//! Seeded weak-cell populations.
//!
//! Rowhammer flips are not uniform: only a sparse population of "weak" cells
//! ever flips, each with its own disturbance threshold and direction. Kim et
//! al. (ISCA 2014) showed these populations are stable per module — the same
//! cells flip again under the same hammering, which is precisely the property
//! ExplFrame's templating phase relies on. [`WeakCellMap`] reproduces that:
//! the population is a pure function of `(seed, row)`, so re-hammering a row
//! re-finds the same cells.

use std::sync::Arc;

use perf::FastMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Disturbance units contributed by one ACT of an adjacent (distance-1) row.
///
/// Thresholds are stored in the same fixed-point units so that distance-2
/// "blast radius" contributions can be represented as 1/16 of a near ACT.
pub const DIST_UNITS_NEAR: u32 = 16;
/// Disturbance units contributed by one ACT of a distance-2 row.
pub const DIST_UNITS_FAR: u32 = 1;

/// Whether a cell stores charge for logical `1` (true cell) or logical `0`
/// (anti cell).
///
/// Disturbance leaks charge, so a true cell flips `1 → 0` and an anti cell
/// flips `0 → 1`. A cell only flips if the victim data currently holds the
/// cell's charged value — the data-pattern dependence observed on hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellPolarity {
    /// Charged state encodes `1`; flips `1 → 0`.
    True,
    /// Charged state encodes `0`; flips `0 → 1`.
    Anti,
}

impl CellPolarity {
    /// The bit value this cell must hold for a flip to be possible.
    pub const fn charged_value(self) -> bool {
        matches!(self, CellPolarity::True)
    }

    /// The bit value after a flip.
    pub const fn discharged_value(self) -> bool {
        !self.charged_value()
    }
}

/// One disturbance-susceptible cell within a DRAM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeakCell {
    /// Bit index within the row, `0 .. row_bytes * 8`.
    pub bit_in_row: u32,
    /// True-cell or anti-cell orientation.
    pub polarity: CellPolarity,
    /// Flip threshold in disturbance units (see [`DIST_UNITS_NEAR`]):
    /// accumulated units within one refresh window at or above this flip the
    /// cell.
    pub threshold_units: u64,
}

impl WeakCell {
    /// Threshold expressed as equivalent adjacent-row activations.
    pub const fn threshold_acts(&self) -> u64 {
        self.threshold_units / DIST_UNITS_NEAR as u64
    }
}

/// Parameters of the weak-cell population.
///
/// # Examples
///
/// ```
/// use dram::WeakCellParams;
/// let p = WeakCellParams::default();
/// assert!(p.density > 0.0 && p.density < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakCellParams {
    /// Probability that any given bit is a weak cell.
    pub density: f64,
    /// Mean flip threshold in adjacent-row activations.
    pub mean_threshold_acts: u64,
    /// Log-normal sigma of the threshold distribution.
    pub threshold_sigma: f64,
    /// Hard lower bound on thresholds (activations).
    pub min_threshold_acts: u64,
    /// Fraction of weak cells that are true cells (rest are anti cells).
    pub true_cell_fraction: f64,
}

impl WeakCellParams {
    /// A heavily vulnerable module (≈0.65 weak cells per 8 KiB row):
    /// convenient for fast tests.
    pub const fn flippy() -> Self {
        WeakCellParams {
            density: 1e-5,
            mean_threshold_acts: 60_000,
            threshold_sigma: 0.25,
            min_threshold_acts: 25_000,
            true_cell_fraction: 0.7,
        }
    }

    /// A moderately vulnerable module (≈1 weak cell per 15 rows), the default
    /// used by the paper-scale experiments.
    pub const fn moderate() -> Self {
        WeakCellParams {
            density: 1e-6,
            mean_threshold_acts: 60_000,
            threshold_sigma: 0.25,
            min_threshold_acts: 25_000,
            true_cell_fraction: 0.7,
        }
    }

    /// A nearly-immune module (≈1 weak cell per 1500 rows).
    pub const fn rare() -> Self {
        WeakCellParams {
            density: 1e-8,
            mean_threshold_acts: 120_000,
            threshold_sigma: 0.25,
            min_threshold_acts: 60_000,
            true_cell_fraction: 0.7,
        }
    }

    /// Returns a copy with a different weak-cell density.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not within `(0, 1)`.
    pub fn with_density(mut self, density: f64) -> Self {
        assert!(density > 0.0 && density < 1.0, "density must be in (0, 1)");
        self.density = density;
        self
    }

    /// Returns a copy with a different mean threshold.
    pub fn with_mean_threshold_acts(mut self, acts: u64) -> Self {
        self.mean_threshold_acts = acts;
        self
    }

    /// The widest many-sided aggressor set that can still flip the most
    /// flippable cell of this population inside one refresh window of
    /// `timing` — the activation-budget picture the adaptive attacker plans
    /// against.
    ///
    /// A victim sandwiched inside a round-robin pattern of `W` rows gains
    /// two near-aggressor activations per round, and one round of `W` rows
    /// costs `W × tRC`. Crossing the floor threshold before the victim's
    /// next refresh therefore needs
    /// `W ≤ 2 × max_acts_per_window / min_threshold_acts`. The result is
    /// clamped to `[2, 64]`: two rows is plain double-sided hammering, and
    /// 64 is the model's bitslice lane width (wider patterns gain nothing).
    pub const fn max_feasible_rows(&self, timing: &crate::timing::DramTiming) -> u32 {
        let budget = 2 * timing.max_acts_per_window() / self.min_threshold_acts;
        let clamped = if budget < 2 {
            2
        } else if budget > 64 {
            64
        } else {
            budget
        };
        clamped as u32
    }
}

impl Default for WeakCellParams {
    fn default() -> Self {
        Self::moderate()
    }
}

/// A row's weak-cell population packed for bitsliced threshold evaluation.
///
/// The hammer hot path asks one question per disturbance step: *which cells
/// cross their threshold when accumulated units move from `old` to `new`?*
/// Instead of a per-cell compare-and-branch loop, the thresholds of up to
/// 64 cells are transposed into u64 bit lanes — lane `b` holds bit `b` of
/// every cell's threshold, cell `i` occupying bit `i` of each lane. A
/// bit-serial magnitude comparison over the lanes then answers the
/// question for the whole row at once (mask-compare-accumulate), and the
/// `min`/`max` threshold bounds reject the common no-crossing case without
/// touching the lanes at all.
///
/// Rows with more than 64 weak cells (beyond any realistic density) have
/// no lanes and fall back to the scalar path.
#[derive(Debug)]
pub struct RowEval {
    cells: Arc<[WeakCell]>,
    /// `lanes[b]` bit `i` = bit `b` of `cells[i].threshold_units`.
    lanes: Vec<u64>,
    /// Occupancy: bit `i` set for each packed cell.
    mask: u64,
    /// Smallest threshold in the row (`u64::MAX` when empty).
    min_threshold: u64,
    /// Largest threshold in the row (0 when empty).
    max_threshold: u64,
}

impl RowEval {
    fn new(cells: Arc<[WeakCell]>) -> Self {
        let min_threshold = cells
            .iter()
            .map(|c| c.threshold_units)
            .min()
            .unwrap_or(u64::MAX);
        let max_threshold = cells.iter().map(|c| c.threshold_units).max().unwrap_or(0);
        let (lanes, mask) = if cells.is_empty() || cells.len() > 64 {
            (Vec::new(), 0)
        } else {
            let width = (64 - max_threshold.leading_zeros()) as usize;
            let mut lanes = vec![0u64; width];
            for (i, cell) in cells.iter().enumerate() {
                for (b, lane) in lanes.iter_mut().enumerate() {
                    *lane |= ((cell.threshold_units >> b) & 1) << i;
                }
            }
            let mask = if cells.len() == 64 {
                u64::MAX
            } else {
                (1u64 << cells.len()) - 1
            };
            (lanes, mask)
        };
        RowEval {
            cells,
            lanes,
            mask,
            min_threshold,
            max_threshold,
        }
    }

    /// The row's cells, sorted by bit index.
    pub fn cells(&self) -> &Arc<[WeakCell]> {
        &self.cells
    }

    /// True when the row has no weak cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cheap reject: can *any* cell cross when units move from `old` to
    /// `new`? (A cell crosses when `old < threshold <= new`.)
    #[inline]
    pub fn may_cross(&self, old: u64, new: u64) -> bool {
        new >= self.min_threshold && old < self.max_threshold
    }

    /// Bitsliced mask of cells with `threshold <= x`, over the lane bits.
    fn le_mask(&self, x: u64) -> u64 {
        let width = self.lanes.len();
        // Thresholds fit in `width` bits; anything at or above 2^width
        // dominates every cell.
        if width < 64 && x >> width != 0 {
            return self.mask;
        }
        // Bit-serial magnitude compare, MSB down: `gt` collects cells whose
        // threshold is already known greater than `x`, `eq` the still-tied.
        let mut gt = 0u64;
        let mut eq = self.mask;
        for b in (0..width).rev() {
            let lane = self.lanes[b];
            if (x >> b) & 1 == 1 {
                // x has a 1: cells with a 0 here are below (hence ≤) — they
                // simply leave the tie; cells with a 1 stay tied.
                eq &= lane;
            } else {
                // x has a 0: tied cells with a 1 here are strictly greater.
                gt |= eq & lane;
                eq &= !lane;
            }
        }
        self.mask & !gt
    }

    /// Mask of cells crossing in `(old, new]`, or `None` for rows too wide
    /// to bitslice (callers fall back to the scalar loop).
    ///
    /// Bit `i` of the result corresponds to `self.cells()[i]`.
    pub fn crossed_mask(&self, old: u64, new: u64) -> Option<u64> {
        if self.cells.len() > 64 {
            return None;
        }
        if !self.may_cross(old, new) {
            return Some(0);
        }
        Some(self.le_mask(new) & !self.le_mask(old))
    }

    /// The scalar reference evaluation: the exact mask a per-cell loop
    /// produces. The hot path checks itself against this in debug builds.
    pub fn crossed_mask_scalar(&self, old: u64, new: u64) -> u64 {
        let mut mask = 0u64;
        for (i, cell) in self.cells.iter().enumerate().take(64) {
            if old < cell.threshold_units && cell.threshold_units <= new {
                mask |= 1 << i;
            }
        }
        mask
    }
}

/// Lazily generated, deterministic map from rows to their weak cells.
///
/// The cells of a row are a pure function of `(seed, global_row_id)`; the map
/// memoises them — together with their bitsliced [`RowEval`] packing — so
/// repeated hammering of the same row is cheap.
#[derive(Debug, Clone)]
pub struct WeakCellMap {
    seed: u64,
    params: WeakCellParams,
    bits_per_row: u32,
    cache: FastMap<u64, Arc<RowEval>>,
}

/// Two maps are equal when they describe the same population — the memo
/// cache is excluded, since it only reflects which rows happen to have been
/// queried (an oracle call must not make two otherwise-identical devices
/// compare unequal).
impl PartialEq for WeakCellMap {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.params == other.params
            && self.bits_per_row == other.bits_per_row
    }
}

/// SplitMix64 step — used to derive independent per-row seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sample a Poisson variate with small λ via Knuth's algorithm.
fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    debug_assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // λ is tiny in practice; guard against pathological parameters.
        if k > 10_000 {
            return k;
        }
    }
}

/// Standard normal variate via Box–Muller.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl WeakCellMap {
    /// Creates a map for rows of `bits_per_row` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_row` is zero or `params.density` is outside
    /// `(0, 1)`.
    pub fn new(seed: u64, params: WeakCellParams, bits_per_row: u32) -> Self {
        assert!(bits_per_row > 0, "rows must contain at least one bit");
        assert!(
            params.density > 0.0 && params.density < 1.0,
            "density must be in (0, 1)"
        );
        WeakCellMap {
            seed,
            params,
            bits_per_row,
            cache: FastMap::default(),
        }
    }

    /// The population parameters.
    pub fn params(&self) -> &WeakCellParams {
        &self.params
    }

    /// Returns the weak cells of the row identified by `global_row_id`,
    /// generating and memoising them on first use.
    pub fn cells_for_row(&mut self, global_row_id: u64) -> Arc<[WeakCell]> {
        Arc::clone(self.row_eval(global_row_id).cells())
    }

    /// Returns the row's bitsliced evaluation structure, generating and
    /// memoising it on first use.
    pub fn row_eval(&mut self, global_row_id: u64) -> Arc<RowEval> {
        if let Some(row) = self.cache.get(&global_row_id) {
            return Arc::clone(row);
        }
        let row = Arc::new(RowEval::new(self.generate(global_row_id)));
        self.cache.insert(global_row_id, Arc::clone(&row));
        row
    }

    fn generate(&self, global_row_id: u64) -> Arc<[WeakCell]> {
        let row_seed = splitmix64(self.seed ^ splitmix64(global_row_id.wrapping_add(0xA5A5)));
        let mut rng = StdRng::seed_from_u64(row_seed);
        let lambda = self.bits_per_row as f64 * self.params.density;
        let count = sample_poisson(&mut rng, lambda);
        let mut cells: Vec<WeakCell> = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let bit_in_row = rng.gen_range(0..self.bits_per_row);
            if cells.iter().any(|c| c.bit_in_row == bit_in_row) {
                continue; // collisions are vanishingly rare; skip rather than loop
            }
            let polarity = if rng.gen::<f64>() < self.params.true_cell_fraction {
                CellPolarity::True
            } else {
                CellPolarity::Anti
            };
            let z = sample_standard_normal(&mut rng);
            let acts = (self.params.mean_threshold_acts as f64
                * (self.params.threshold_sigma * z).exp())
            .max(self.params.min_threshold_acts as f64) as u64;
            cells.push(WeakCell {
                bit_in_row,
                polarity,
                threshold_units: acts * DIST_UNITS_NEAR as u64,
            });
        }
        cells.sort_by_key(|c| c.bit_in_row);
        cells.into()
    }

    /// Number of rows whose populations have been generated so far.
    pub fn cached_rows(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_values() {
        assert!(CellPolarity::True.charged_value());
        assert!(!CellPolarity::True.discharged_value());
        assert!(!CellPolarity::Anti.charged_value());
        assert!(CellPolarity::Anti.discharged_value());
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = WeakCellMap::new(42, WeakCellParams::flippy(), 65536);
        let mut b = WeakCellMap::new(42, WeakCellParams::flippy(), 65536);
        for row in 0..200u64 {
            assert_eq!(a.cells_for_row(row)[..], b.cells_for_row(row)[..]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WeakCellMap::new(1, WeakCellParams::flippy(), 65536);
        let mut b = WeakCellMap::new(2, WeakCellParams::flippy(), 65536);
        let differs = (0..500u64).any(|r| a.cells_for_row(r)[..] != b.cells_for_row(r)[..]);
        assert!(differs);
    }

    #[test]
    fn density_controls_population_size() {
        let rows = 2000u64;
        let count = |density: f64| -> usize {
            let mut m = WeakCellMap::new(7, WeakCellParams::flippy().with_density(density), 65536);
            (0..rows).map(|r| m.cells_for_row(r).len()).sum()
        };
        let sparse = count(1e-7);
        let dense = count(1e-4);
        assert!(dense > sparse * 10, "dense={dense} sparse={sparse}");
        // Sanity: 1e-4 * 65536 bits * 2000 rows ≈ 13k cells.
        let expected = 1e-4 * 65536.0 * rows as f64;
        assert!((dense as f64) > expected * 0.8 && (dense as f64) < expected * 1.2);
    }

    #[test]
    fn max_feasible_rows_follows_the_activation_budget() {
        use crate::timing::DramTiming;
        let t = DramTiming::ddr3_1600();
        // DDR3 defaults leave enormous headroom: 2 × 1.39M / 25k ≈ 111,
        // clamped to the 64-lane ceiling — width is never the binding
        // constraint on an unmitigated module.
        assert_eq!(WeakCellParams::flippy().max_feasible_rows(&t), 64);
        // A refresh window ~50× shorter makes width bind hard.
        let scaled = t.with_refresh_scale(0.02);
        let w = WeakCellParams::flippy().max_feasible_rows(&scaled);
        assert!((2..8).contains(&w), "scaled width was {w}");
        // The floor is plain double-sided hammering.
        let tiny = t.with_refresh_scale(0.001);
        assert_eq!(WeakCellParams::flippy().max_feasible_rows(&tiny), 2);
    }

    #[test]
    fn thresholds_respect_floor() {
        let params = WeakCellParams::flippy();
        let mut m = WeakCellMap::new(3, params, 65536);
        for row in 0..500u64 {
            for c in m.cells_for_row(row).iter() {
                assert!(c.threshold_acts() >= params.min_threshold_acts);
            }
        }
    }

    #[test]
    fn cells_sorted_and_unique() {
        let mut m = WeakCellMap::new(9, WeakCellParams::flippy().with_density(1e-4), 65536);
        for row in 0..100u64 {
            let cells = m.cells_for_row(row);
            for w in cells.windows(2) {
                assert!(w[0].bit_in_row < w[1].bit_in_row);
            }
        }
    }

    #[test]
    fn cache_memoises() {
        let mut m = WeakCellMap::new(11, WeakCellParams::flippy(), 65536);
        let a = m.cells_for_row(5);
        let b = m.cells_for_row(5);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(m.cached_rows(), 1);
    }

    #[test]
    fn true_cell_fraction_is_respected() {
        let mut m = WeakCellMap::new(13, WeakCellParams::flippy().with_density(1e-4), 65536);
        let mut true_cells = 0usize;
        let mut total = 0usize;
        for row in 0..2000u64 {
            for c in m.cells_for_row(row).iter() {
                total += 1;
                if c.polarity == CellPolarity::True {
                    true_cells += 1;
                }
            }
        }
        let frac = true_cells as f64 / total as f64;
        assert!((frac - 0.7).abs() < 0.05, "true-cell fraction was {frac}");
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1)")]
    fn invalid_density_rejected() {
        WeakCellParams::flippy().with_density(0.0);
    }

    /// Builds a synthetic row directly, bypassing generation.
    fn synthetic_row(thresholds: &[u64]) -> RowEval {
        let cells: Vec<WeakCell> = thresholds
            .iter()
            .enumerate()
            .map(|(i, &t)| WeakCell {
                bit_in_row: i as u32,
                polarity: CellPolarity::True,
                threshold_units: t,
            })
            .collect();
        RowEval::new(cells.into())
    }

    #[test]
    fn bitsliced_mask_matches_scalar_on_generated_rows() {
        let mut m = WeakCellMap::new(21, WeakCellParams::flippy().with_density(1e-4), 65536);
        let mut rng = StdRng::seed_from_u64(99);
        let mut crossings = 0u64;
        for row_id in 0..500u64 {
            let row = m.row_eval(row_id);
            for _ in 0..8 {
                let a: u64 = rng.gen_range(0..2_000_000);
                let b: u64 = rng.gen_range(0..2_000_000);
                let (old, new) = (a.min(b), a.max(b));
                let mask = row.crossed_mask(old, new).expect("rows fit in 64 lanes");
                assert_eq!(
                    mask,
                    row.crossed_mask_scalar(old, new),
                    "row {row_id} diverged for ({old}, {new}]"
                );
                crossings += u64::from(mask.count_ones());
            }
        }
        assert!(crossings > 0, "sweep must exercise actual crossings");
    }

    #[test]
    fn bitsliced_mask_boundary_semantics() {
        let row = synthetic_row(&[100, 200, 200, 4096]);
        // Crossing is (old, new]: inclusive above, exclusive below.
        assert_eq!(row.crossed_mask(0, 99), Some(0));
        assert_eq!(row.crossed_mask(0, 100), Some(0b0001));
        assert_eq!(row.crossed_mask(100, 200), Some(0b0110));
        assert_eq!(row.crossed_mask(99, 100), Some(0b0001));
        assert_eq!(row.crossed_mask(200, 4095), Some(0));
        assert_eq!(row.crossed_mask(200, u64::MAX), Some(0b1000));
        assert_eq!(row.crossed_mask(0, u64::MAX), Some(0b1111));
        assert!(row.may_cross(0, 100));
        assert!(!row.may_cross(0, 99));
        assert!(!row.may_cross(4096, u64::MAX));
    }

    #[test]
    fn empty_and_oversized_rows() {
        let empty = synthetic_row(&[]);
        assert!(empty.is_empty());
        assert!(!empty.may_cross(0, u64::MAX));
        assert_eq!(empty.crossed_mask(0, u64::MAX), Some(0));
        // 65 cells exceed the lane width: the mask path declines and the
        // caller must fall back to the scalar loop.
        let wide: Vec<u64> = (1..=65u64).map(|i| i * 10).collect();
        let wide = synthetic_row(&wide);
        assert_eq!(wide.crossed_mask(0, 1000), None);
        assert!(wide.may_cross(0, 10));
    }

    #[test]
    fn full_64_cell_row_uses_a_complete_mask() {
        let thresholds: Vec<u64> = (1..=64u64).map(|i| i * 3).collect();
        let row = synthetic_row(&thresholds);
        assert_eq!(row.crossed_mask(0, u64::MAX), Some(u64::MAX));
        assert_eq!(
            row.crossed_mask(3, 6),
            Some(0b10),
            "only the second cell crosses in (3, 6]"
        );
    }
}
