//! Snapshot contract of the DRAM device, checked differentially: for a
//! random interleaving of data traffic, activations, bulk hammering and
//! idle time — against a module with both TRR and SECDED ECC enabled, so
//! the countermeasure state is captured too —
//! `snapshot → mutate arbitrarily → restore → replay suffix` must be
//! state-identical (data array, row buffers, disturbance counters, clock,
//! TRR sampler tables, ECC tracker, stats, flip log) to a fresh boot
//! replaying the same full sequence.

use dram::{DramConfig, DramCoord, DramDevice, EccMode, ParaParams, RfmParams, TrrParams};
use proptest::prelude::*;
use snaptest::{check_replay_equivalence, replay_plan};

/// A hardened module: the snapshot must carry TRR and ECC state, not just
/// the data plane. Low TRR threshold so the sampler actually fires.
fn boot() -> (DramDevice, ()) {
    let config = DramConfig::small()
        .with_seed(13)
        .with_trr(Some(TrrParams::ddr4_like().with_threshold_acts(1200)))
        .with_ecc(EccMode::Secded);
    (DramDevice::new(config), ())
}

/// Everything armed at once: the command clock plus every countermeasure —
/// PARA sampler position, RFM RAA counters/row tables, TRR, ECC. The
/// snapshot must carry the full time-domain state byte-identically.
fn boot_timed() -> (DramDevice, ()) {
    let config = DramConfig::small()
        .with_seed(13)
        .with_trr(Some(TrrParams::ddr4_like().with_threshold_acts(1200)))
        .with_ecc(EccMode::Secded)
        .with_timing_engine(true)
        .with_para(Some(
            ParaParams::para_2014().with_mean_acts_per_refresh(700),
        ))
        .with_rfm(Some(RfmParams::ddr5_like().with_raaimt(1500)));
    (DramDevice::new(config), ())
}

/// Decodes one opcode word into a device operation, confined to a 64-row
/// window of each bank so hammering and refresh interact densely.
fn step(dev: &mut DramDevice, (): &mut (), word: u64) {
    let g = dev.config().geometry;
    let bank = ((word >> 4) % u64::from(g.banks)) as u32;
    let row = 2 + ((word >> 16) % 60) as u32;
    let col = ((word >> 24) % u64::from(g.row_bytes - 64)) as u32;
    let coord = DramCoord {
        channel: 0,
        rank: 0,
        bank,
        row,
        col,
    };
    let addr = dev.mapping().coord_to_phys(coord);
    let byte = (word >> 40) as u8;
    match word % 8 {
        0 => {
            let row_start = dev.mapping().coord_to_phys(DramCoord { col: 0, ..coord });
            dev.fill(row_start, u64::from(g.row_bytes), byte);
        }
        1 => dev.write(addr, &word.to_le_bytes()),
        2 => {
            let mut buf = [0u8; 16];
            dev.read(addr, &mut buf);
        }
        3 => {
            dev.access(addr);
        }
        4 => {
            let above = dev.mapping().coord_to_phys(DramCoord {
                row: row - 1,
                col: 0,
                ..coord
            });
            let below = dev.mapping().coord_to_phys(DramCoord {
                row: row + 1,
                col: 0,
                ..coord
            });
            let pairs = 500 + (word >> 32) % 40_000;
            dev.hammer_pair(above, below, pairs)
                .expect("distinct same-bank rows");
        }
        5 => {
            let rows: Vec<_> = [row - 2, row - 1, row + 1, row + 2]
                .into_iter()
                .map(|r| {
                    dev.mapping().coord_to_phys(DramCoord {
                        row: r,
                        col: 0,
                        ..coord
                    })
                })
                .collect();
            let rounds = 500 + (word >> 32) % 20_000;
            dev.hammer_rows(&rows, rounds)
                .expect("distinct same-bank rows");
        }
        6 => dev.advance((word >> 32) % 50_000_000),
        _ => dev.write_byte(addr, byte),
    }
}

proptest! {
    #[test]
    fn snapshot_restore_replay_matches_fresh_boot(plan in replay_plan(60)) {
        check_replay_equivalence(
            &plan,
            boot,
            step,
            DramDevice::snapshot,
            |dev, snap| dev.restore(snap),
        )?;
    }

    #[test]
    fn snapshot_fork_induces_identical_flips(words in proptest::collection::vec(any::<u64>(), 1..40)) {
        let (mut original, ()) = boot();
        for &w in &words[..words.len() / 2] {
            step(&mut original, &mut (), w);
        }
        let mut fork = original.snapshot().to_device();
        for &w in &words[words.len() / 2..] {
            step(&mut original, &mut (), w);
            step(&mut fork, &mut (), w);
        }
        prop_assert_eq!(original.flips(), fork.flips());
        prop_assert_eq!(original.stats(), fork.stats());
        prop_assert_eq!(original.trr_triggers(), fork.trr_triggers());
        prop_assert_eq!(original.ecc_stats(), fork.ecc_stats());
        prop_assert_eq!(original.snapshot(), fork.snapshot());
    }

    #[test]
    fn timed_snapshot_restore_replay_matches_fresh_boot(plan in replay_plan(60)) {
        check_replay_equivalence(
            &plan,
            boot_timed,
            step,
            DramDevice::snapshot,
            |dev, snap| dev.restore(snap),
        )?;
    }

    #[test]
    fn timed_snapshot_fork_induces_identical_flips(words in proptest::collection::vec(any::<u64>(), 1..40)) {
        let (mut original, ()) = boot_timed();
        for &w in &words[..words.len() / 2] {
            step(&mut original, &mut (), w);
        }
        let mut fork = original.snapshot().to_device();
        for &w in &words[words.len() / 2..] {
            step(&mut original, &mut (), w);
            step(&mut fork, &mut (), w);
        }
        prop_assert_eq!(original.flips(), fork.flips());
        prop_assert_eq!(original.stats(), fork.stats());
        prop_assert_eq!(original.para_refreshes(), fork.para_refreshes());
        prop_assert_eq!(original.rfm_commands(), fork.rfm_commands());
        prop_assert_eq!(original.command_clock(), fork.command_clock());
        prop_assert_eq!(original.snapshot(), fork.snapshot());
    }
}
