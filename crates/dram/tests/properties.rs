//! Property-based tests for the DRAM model.

use dram::{
    AddressMapping, DramConfig, DramCoord, DramDevice, DramGeometry, LinearMapping, PhysAddr,
    SparseMemory, XorMapping,
};
use proptest::prelude::*;

fn geometries() -> impl Strategy<Value = DramGeometry> {
    prop_oneof![
        Just(DramGeometry::small_256mib()),
        Just(DramGeometry::medium_1gib()),
        Just(DramGeometry::desktop_4gib()),
        Just(DramGeometry {
            channels: 2,
            ranks: 2,
            banks: 16,
            rows: 1024,
            row_bytes: 4096
        }),
    ]
}

proptest! {
    /// phys → coord → phys is the identity for both mappings.
    #[test]
    fn mappings_roundtrip(g in geometries(), frac in 0.0f64..1.0) {
        let addr = PhysAddr::new(((g.capacity_bytes() - 1) as f64 * frac) as u64);
        let lin = LinearMapping::new(g);
        let xor = XorMapping::new(g);
        prop_assert_eq!(lin.coord_to_phys(lin.phys_to_coord(addr)), addr);
        prop_assert_eq!(xor.coord_to_phys(xor.phys_to_coord(addr)), addr);
    }

    /// Two distinct addresses never decode to the same coordinate.
    #[test]
    fn mappings_injective(g in geometries(), a in any::<u64>(), b in any::<u64>()) {
        let a = PhysAddr::new(a % g.capacity_bytes());
        let b = PhysAddr::new(b % g.capacity_bytes());
        prop_assume!(a != b);
        let xor = XorMapping::new(g);
        prop_assert_ne!(xor.phys_to_coord(a), xor.phys_to_coord(b));
    }

    /// The other direction of the bijection: coord → phys → coord is the
    /// identity for every in-range coordinate of every supported geometry,
    /// and the encoded address is always within capacity. Together with
    /// `mappings_roundtrip`/`mappings_injective` this makes both mappings
    /// full bijections over `[0, capacity)`.
    #[test]
    fn mappings_coord_roundtrip(
        g in geometries(),
        ch in any::<u32>(),
        rk in any::<u32>(),
        ba in any::<u32>(),
        row in any::<u32>(),
        col in any::<u32>(),
    ) {
        let coord = DramCoord {
            channel: ch % g.channels,
            rank: rk % g.ranks,
            bank: ba % g.banks,
            row: row % g.rows,
            col: col % g.row_bytes,
        };
        let lin = LinearMapping::new(g);
        let xor = XorMapping::new(g);
        for m in [&lin as &dyn AddressMapping, &xor] {
            let addr = m.coord_to_phys(coord);
            prop_assert!(addr.as_u64() < g.capacity_bytes());
            prop_assert_eq!(m.phys_to_coord(addr), coord);
        }
    }

    /// Row-neighbour symmetry: `neighbour_rows(radius)` contains the row
    /// at signed distance `d` exactly when `0 < |d| <= radius` and the row
    /// is in bounds; every neighbour relation is mutual (`a` neighbours
    /// `b` iff `b` neighbours `a`) and preserves channel/rank/bank/col.
    #[test]
    fn neighbour_rows_symmetry(g in geometries(), row in any::<u32>(), radius in 0u32..5) {
        let coord = DramCoord { channel: 0, rank: 0, bank: 0, row: row % g.rows, col: 17 % g.row_bytes };
        let neighbours = coord.neighbour_rows(radius, &g);
        for d in -(i64::from(radius) + 2)..=i64::from(radius) + 2 {
            let target = i64::from(coord.row) + d;
            let expected = d != 0
                && d.unsigned_abs() <= u64::from(radius)
                && target >= 0
                && target < i64::from(g.rows);
            prop_assert_eq!(
                neighbours.iter().any(|n| i64::from(n.row) == target),
                expected,
                "distance {} of row {} (radius {})", d, coord.row, radius
            );
        }
        for n in &neighbours {
            prop_assert_eq!((n.channel, n.rank, n.bank, n.col),
                            (coord.channel, coord.rank, coord.bank, coord.col));
            // Mutuality: the victim appears among its neighbour's neighbours.
            prop_assert!(n.neighbour_rows(radius, &g).iter().any(|b| b.row == coord.row));
        }
        // neighbour_row (singular) agrees with the set for ±1.
        let set_has = |d: i64| neighbours.iter().any(|n| i64::from(n.row) == i64::from(coord.row) + d);
        if radius >= 1 {
            prop_assert_eq!(coord.neighbour_row(1, &g).is_some(), set_has(1));
            prop_assert_eq!(coord.neighbour_row(-1, &g).is_some(), set_has(-1));
        }
    }

    /// SparseMemory behaves like a plain byte array under random ops.
    #[test]
    fn sparse_memory_matches_dense_model(
        ops in prop::collection::vec(
            (0u64..32768, any::<u8>(), 0usize..3, 1u64..6000), 1..60
        )
    ) {
        let cap = 64 * 1024u64;
        let mut sparse = SparseMemory::new(cap);
        let mut dense = vec![0u8; cap as usize];
        for (addr, val, kind, len) in ops {
            match kind {
                0 => {
                    sparse.write_byte(PhysAddr::new(addr), val);
                    dense[addr as usize] = val;
                }
                1 => {
                    let len = len.min(cap - addr);
                    sparse.fill(PhysAddr::new(addr), len, val);
                    dense[addr as usize..(addr + len) as usize].fill(val);
                }
                _ => {
                    let len = len.min(cap - addr) as usize;
                    let data: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                    sparse.write(PhysAddr::new(addr), &data);
                    dense[addr as usize..addr as usize + len].copy_from_slice(&data);
                }
            }
        }
        let mut out = vec![0u8; cap as usize];
        sparse.read(PhysAddr::new(0), &mut out);
        prop_assert_eq!(out, dense);
    }

    /// Hammering never corrupts data outside the aggressors' blast radius
    /// (±2 rows), and every reported flip is inside it.
    #[test]
    fn hammer_flips_stay_in_blast_radius(seed in 0u64..50, row in 4u32..1000) {
        let mut dev = DramDevice::new(DramConfig::small().with_seed(seed));
        let g = dev.config().geometry;
        let coord = |r: u32| dram::DramCoord { channel: 0, rank: 0, bank: 0, row: r, col: 0 };
        let a = dev.mapping().coord_to_phys(coord(row - 1));
        let b = dev.mapping().coord_to_phys(coord(row + 1));
        // Charge a window of rows around the victim with both patterns so
        // flips of either polarity are observable.
        for r in row.saturating_sub(3)..=(row + 3).min(g.rows - 1) {
            let addr = dev.mapping().coord_to_phys(coord(r));
            dev.fill(addr, g.row_bytes as u64 / 2, 0xFF);
        }
        let outcome = dev.hammer_pair(a, b, 200_000).unwrap();
        for f in &outcome.flips {
            let d = (f.coord.row as i64 - row as i64).abs();
            prop_assert!(d <= 3, "flip at row {} too far from victim {}", f.coord.row, row);
            // Aggressor rows refresh themselves by activation.
            prop_assert!(f.coord.row != row - 1 && f.coord.row != row + 1);
        }
    }

    /// The flip population is a pure function of the seed: same seed, same
    /// hammering → identical flips; the data pattern only gates direction.
    #[test]
    fn same_seed_same_flips(seed in 0u64..30) {
        let run = || {
            let mut dev = DramDevice::new(DramConfig::small().with_seed(seed));
            let g = dev.config().geometry;
            let coord = |r: u32| dram::DramCoord { channel: 0, rank: 0, bank: 0, row: r, col: 0 };
            let a = dev.mapping().coord_to_phys(coord(49));
            let b = dev.mapping().coord_to_phys(coord(51));
            dev.fill(dev.mapping().coord_to_phys(coord(50)), g.row_bytes as u64, 0xFF);
            dev.hammer_pair(a, b, 150_000)
                .unwrap()
                .flips
                .iter()
                .map(|f| (f.addr, f.bit))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
