//! Property-based tests for the DRAM model.

use dram::{
    AddressMapping, CommandClock, DramConfig, DramCoord, DramDevice, DramGeometry, DramTiming,
    LinearMapping, Nanos, PhysAddr, SparseMemory, XorMapping,
};
use proptest::prelude::*;

/// One abstract command for driving [`CommandClock`] with arbitrary,
/// protocol-ignorant request streams: `(opcode, rank, bank, requested
/// delay)`. The clock must bump every start time to a legal slot no matter
/// how hostile the requests are.
type CmdWord = (u8, u32, u32, u64);

/// Replays `words` against a fresh clock and checks the protocol
/// invariants externally, from the returned start times alone.
fn check_command_protocol(
    timing: DramTiming,
    ranks: u32,
    banks: u32,
    words: &[CmdWord],
) -> Result<(), TestCaseError> {
    let mut clock = CommandClock::new(timing, ranks, banks);
    // Externally reconstructed history: last ACT / earliest-next-ACT per
    // bank, ACT starts per rank (for tFAW), and the global command tape.
    let mut last_act: Vec<Option<Nanos>> = vec![None; (ranks * banks) as usize];
    let mut last_pre_done: Vec<Nanos> = vec![0; (ranks * banks) as usize];
    let mut rank_acts: Vec<Vec<Nanos>> = vec![Vec::new(); ranks as usize];
    let mut prev_start: Nanos = 0;
    for &(op, rank, bank, delay) in words {
        let (rank, bank) = (rank % ranks, bank % banks);
        let idx = (rank * banks + bank) as usize;
        let requested = prev_start + delay % 10_000;
        let start = match op % 3 {
            0 => {
                let start = clock.activate(rank, bank, requested);
                // tRC against the same bank's previous ACT.
                if let Some(prev) = last_act[idx] {
                    prop_assert!(
                        start >= prev + timing.t_rc,
                        "ACT at {start} violates tRC after ACT at {prev}"
                    );
                }
                // tRP against the bank's last explicit precharge.
                prop_assert!(start >= last_pre_done[idx], "ACT at {start} inside tRP");
                // tFAW: at most 4 ACTs of this rank in any tFAW span —
                // equivalently, the 4th-most-recent ACT is ≥ tFAW older.
                rank_acts[rank as usize].push(start);
                let acts = &rank_acts[rank as usize];
                if acts.len() >= 5 {
                    let fourth_back = acts[acts.len() - 5];
                    prop_assert!(
                        start >= fourth_back + timing.t_faw,
                        "five ACTs of rank {rank} within tFAW at {start}"
                    );
                }
                last_act[idx] = Some(start);
                start
            }
            1 => {
                let start = clock.precharge(rank, bank, requested);
                // tRAS: the row stayed open long enough.
                if let Some(prev) = last_act[idx] {
                    prop_assert!(
                        start >= prev + timing.t_ras,
                        "PRE at {start} violates tRAS after ACT at {prev}"
                    );
                }
                last_pre_done[idx] = start + timing.t_rp;
                start
            }
            _ => {
                let before = clock.acts();
                let start = clock.column_read(rank, bank, requested);
                if clock.acts() > before {
                    // Closed bank: the read auto-activated it — fold the
                    // implicit ACT into the external history.
                    rank_acts[rank as usize].push(start);
                    last_act[idx] = Some(start);
                }
                start
            }
        };
        // The command clock never runs backwards and never schedules
        // before the caller asked (monotone, causal).
        prop_assert!(start >= prev_start, "command clock ran backwards");
        prop_assert!(start >= requested, "command issued before it was requested");
        prev_start = start;
    }
    // The refresh scheduler's closed form is consistent at any horizon.
    let horizon = prev_start + timing.refresh_window();
    clock.drain_refreshes(horizon);
    prop_assert_eq!(
        clock.refresh_commands(),
        CommandClock::refs_due_by(&timing, horizon)
    );
    Ok(())
}

fn geometries() -> impl Strategy<Value = DramGeometry> {
    prop_oneof![
        Just(DramGeometry::small_256mib()),
        Just(DramGeometry::medium_1gib()),
        Just(DramGeometry::desktop_4gib()),
        Just(DramGeometry {
            channels: 2,
            ranks: 2,
            banks: 16,
            rows: 1024,
            row_bytes: 4096
        }),
    ]
}

proptest! {
    /// phys → coord → phys is the identity for both mappings.
    #[test]
    fn mappings_roundtrip(g in geometries(), frac in 0.0f64..1.0) {
        let addr = PhysAddr::new(((g.capacity_bytes() - 1) as f64 * frac) as u64);
        let lin = LinearMapping::new(g);
        let xor = XorMapping::new(g);
        prop_assert_eq!(lin.coord_to_phys(lin.phys_to_coord(addr)), addr);
        prop_assert_eq!(xor.coord_to_phys(xor.phys_to_coord(addr)), addr);
    }

    /// Two distinct addresses never decode to the same coordinate.
    #[test]
    fn mappings_injective(g in geometries(), a in any::<u64>(), b in any::<u64>()) {
        let a = PhysAddr::new(a % g.capacity_bytes());
        let b = PhysAddr::new(b % g.capacity_bytes());
        prop_assume!(a != b);
        let xor = XorMapping::new(g);
        prop_assert_ne!(xor.phys_to_coord(a), xor.phys_to_coord(b));
    }

    /// The other direction of the bijection: coord → phys → coord is the
    /// identity for every in-range coordinate of every supported geometry,
    /// and the encoded address is always within capacity. Together with
    /// `mappings_roundtrip`/`mappings_injective` this makes both mappings
    /// full bijections over `[0, capacity)`.
    #[test]
    fn mappings_coord_roundtrip(
        g in geometries(),
        ch in any::<u32>(),
        rk in any::<u32>(),
        ba in any::<u32>(),
        row in any::<u32>(),
        col in any::<u32>(),
    ) {
        let coord = DramCoord {
            channel: ch % g.channels,
            rank: rk % g.ranks,
            bank: ba % g.banks,
            row: row % g.rows,
            col: col % g.row_bytes,
        };
        let lin = LinearMapping::new(g);
        let xor = XorMapping::new(g);
        for m in [&lin as &dyn AddressMapping, &xor] {
            let addr = m.coord_to_phys(coord);
            prop_assert!(addr.as_u64() < g.capacity_bytes());
            prop_assert_eq!(m.phys_to_coord(addr), coord);
        }
    }

    /// Row-neighbour symmetry: `neighbour_rows(radius)` contains the row
    /// at signed distance `d` exactly when `0 < |d| <= radius` and the row
    /// is in bounds; every neighbour relation is mutual (`a` neighbours
    /// `b` iff `b` neighbours `a`) and preserves channel/rank/bank/col.
    #[test]
    fn neighbour_rows_symmetry(g in geometries(), row in any::<u32>(), radius in 0u32..5) {
        let coord = DramCoord { channel: 0, rank: 0, bank: 0, row: row % g.rows, col: 17 % g.row_bytes };
        let neighbours = coord.neighbour_rows(radius, &g);
        for d in -(i64::from(radius) + 2)..=i64::from(radius) + 2 {
            let target = i64::from(coord.row) + d;
            let expected = d != 0
                && d.unsigned_abs() <= u64::from(radius)
                && target >= 0
                && target < i64::from(g.rows);
            prop_assert_eq!(
                neighbours.iter().any(|n| i64::from(n.row) == target),
                expected,
                "distance {} of row {} (radius {})", d, coord.row, radius
            );
        }
        for n in &neighbours {
            prop_assert_eq!((n.channel, n.rank, n.bank, n.col),
                            (coord.channel, coord.rank, coord.bank, coord.col));
            // Mutuality: the victim appears among its neighbour's neighbours.
            prop_assert!(n.neighbour_rows(radius, &g).iter().any(|b| b.row == coord.row));
        }
        // neighbour_row (singular) agrees with the set for ±1.
        let set_has = |d: i64| neighbours.iter().any(|n| i64::from(n.row) == i64::from(coord.row) + d);
        if radius >= 1 {
            prop_assert_eq!(coord.neighbour_row(1, &g).is_some(), set_has(1));
            prop_assert_eq!(coord.neighbour_row(-1, &g).is_some(), set_has(-1));
        }
    }

    /// SparseMemory behaves like a plain byte array under random ops.
    #[test]
    fn sparse_memory_matches_dense_model(
        ops in prop::collection::vec(
            (0u64..32768, any::<u8>(), 0usize..3, 1u64..6000), 1..60
        )
    ) {
        let cap = 64 * 1024u64;
        let mut sparse = SparseMemory::new(cap);
        let mut dense = vec![0u8; cap as usize];
        for (addr, val, kind, len) in ops {
            match kind {
                0 => {
                    sparse.write_byte(PhysAddr::new(addr), val);
                    dense[addr as usize] = val;
                }
                1 => {
                    let len = len.min(cap - addr);
                    sparse.fill(PhysAddr::new(addr), len, val);
                    dense[addr as usize..(addr + len) as usize].fill(val);
                }
                _ => {
                    let len = len.min(cap - addr) as usize;
                    let data: Vec<u8> = (0..len).map(|i| val.wrapping_add(i as u8)).collect();
                    sparse.write(PhysAddr::new(addr), &data);
                    dense[addr as usize..addr as usize + len].copy_from_slice(&data);
                }
            }
        }
        let mut out = vec![0u8; cap as usize];
        sparse.read(PhysAddr::new(0), &mut out);
        prop_assert_eq!(out, dense);
    }

    /// Hammering never corrupts data outside the aggressors' blast radius
    /// (±2 rows), and every reported flip is inside it.
    #[test]
    fn hammer_flips_stay_in_blast_radius(seed in 0u64..50, row in 4u32..1000) {
        let mut dev = DramDevice::new(DramConfig::small().with_seed(seed));
        let g = dev.config().geometry;
        let coord = |r: u32| dram::DramCoord { channel: 0, rank: 0, bank: 0, row: r, col: 0 };
        let a = dev.mapping().coord_to_phys(coord(row - 1));
        let b = dev.mapping().coord_to_phys(coord(row + 1));
        // Charge a window of rows around the victim with both patterns so
        // flips of either polarity are observable.
        for r in row.saturating_sub(3)..=(row + 3).min(g.rows - 1) {
            let addr = dev.mapping().coord_to_phys(coord(r));
            dev.fill(addr, g.row_bytes as u64 / 2, 0xFF);
        }
        let outcome = dev.hammer_pair(a, b, 200_000).unwrap();
        for f in &outcome.flips {
            let d = (f.coord.row as i64 - row as i64).abs();
            prop_assert!(d <= 3, "flip at row {} too far from victim {}", f.coord.row, row);
            // Aggressor rows refresh themselves by activation.
            prop_assert!(f.coord.row != row - 1 && f.coord.row != row + 1);
        }
    }

    /// The bank state machine never violates tRC/tRAS/tRP/tFAW for
    /// arbitrary command sequences with arbitrary requested times, and the
    /// command clock is monotone — checked externally from the returned
    /// start times, against an independently reconstructed history.
    #[test]
    fn command_clock_never_violates_timing_constraints(
        words in prop::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()), 1..80
        )
    ) {
        check_command_protocol(DramTiming::ddr3_1600(), 2, 8, &words)?;
    }

    /// Same protocol battery under a stretched tFAW (large enough to
    /// actually bind) and a single-rank module.
    #[test]
    fn command_clock_honours_a_binding_faw_window(
        words in prop::collection::vec(
            (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()), 1..80
        )
    ) {
        let timing = DramTiming { t_faw: 130, ..DramTiming::ddr3_1600() };
        check_command_protocol(timing, 1, 16, &words)?;
    }

    /// The flip population is a pure function of the seed: same seed, same
    /// hammering → identical flips; the data pattern only gates direction.
    #[test]
    fn same_seed_same_flips(seed in 0u64..30) {
        let run = || {
            let mut dev = DramDevice::new(DramConfig::small().with_seed(seed));
            let g = dev.config().geometry;
            let coord = |r: u32| dram::DramCoord { channel: 0, rank: 0, bank: 0, row: r, col: 0 };
            let a = dev.mapping().coord_to_phys(coord(49));
            let b = dev.mapping().coord_to_phys(coord(51));
            dev.fill(dev.mapping().coord_to_phys(coord(50)), g.row_bytes as u64, 0xFF);
            dev.hammer_pair(a, b, 150_000)
                .unwrap()
                .flips
                .iter()
                .map(|f| (f.addr, f.bit))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
