//! Fault analysis of block ciphers — the "offline" half of ExplFrame.
//!
//! Once the attack has planted a persistent bit flip in the victim's cipher
//! tables and collected faulty ciphertexts, these analyses extract the key:
//!
//! * [`PfaCollector`] / [`PfaAnalysis`] — Persistent Fault Analysis (Zhang et
//!   al., TCHES 2018; the paper's reference \[12\]) against the S-box-table
//!   AES shape: the faulted S-box entry makes one output value impossible,
//!   and the per-position *missing ciphertext value* reveals each last-round
//!   key byte. The full AES-128 master key follows by inverting the key
//!   schedule.
//! * [`TableFault`] / [`TeFaultClass`] — classification of a bit flip inside
//!   the 4 KiB T-table page: flips in a final-round *S-lane* fault four
//!   ciphertext positions PFA-exploitably; other flips corrupt only middle
//!   rounds. [`TTablePfa`] accumulates partial keys across several steered
//!   faults until all 16 bytes are known.
//! * [`DfaAttack`] — a Giraud-style differential fault analysis comparator
//!   (single-bit fault on the round-10 input state), the classical
//!   alternative the PFA paper measures against.
//! * [`PresentPfa`] — PFA for PRESENT-80: invert the public bit permutation,
//!   find the missing nibble per S-box position, recover the last round key,
//!   then invert the key schedule (with a 2¹⁶ search over the hidden
//!   register bits) to the 80-bit master key.
//!
//! # Examples
//!
//! End-to-end PFA against a faulted S-box AES:
//!
//! ```
//! use ciphers::{BlockCipher, RamTableSource, SboxAes, TableImage};
//! use fault::{PfaCollector, TableFault};
//! use rand::{Rng, SeedableRng};
//!
//! let key = *b"correct horse bt";
//! let fault = TableFault { offset: 0x2A, bit: 3 };
//! let mut image = TableImage::sbox().to_vec();
//! fault.apply(&mut image);
//! let mut victim = SboxAes::new_128(&key, RamTableSource::new(image));
//!
//! let mut collector = PfaCollector::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! while !collector.all_positions_determined() {
//!     let mut block: [u8; 16] = rng.gen();
//!     victim.encrypt_block(&mut block);
//!     collector.observe(&block);
//! }
//! let analysis = collector.analyze_known_fault(TableImage::sbox()[0x2A]);
//! assert_eq!(analysis.master_key(), Some(key));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfa;
mod model;
mod pfa;
mod present_pfa;
mod ttable_pfa;

pub use dfa::{encrypt_with_round10_input_fault, DfaAttack};
pub use model::{TableFault, TeFaultClass};
pub use pfa::{expected_ciphertexts_for_full_key, PfaAnalysis, PfaCollector};
pub use present_pfa::{invert_present80_schedule, PresentPfa};
pub use ttable_pfa::{PartialKey, TTablePfa};
