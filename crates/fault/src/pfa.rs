//! Persistent Fault Analysis of AES (Zhang et al., TCHES 2018).
//!
//! Premise: the victim's in-memory S-box has one entry changed from
//! `S[j]` to `S[j] ⊕ δ`. The value `v = S[j]` then *never* appears as a
//! last-round S-box output, so ciphertext byte `c[i]` never takes the value
//! `v ⊕ k10[i]`. Collect ciphertexts until exactly one value is missing per
//! position; each missing value reveals one last-round key byte, and the
//! AES-128 master key follows by running the key schedule backwards.

use ciphers::{invert_last_round_key_128, ReferenceAes};

/// Per-position ciphertext-byte histograms for the missing-value analysis.
///
/// See the crate-level example for a full run.
#[derive(Debug, Clone)]
pub struct PfaCollector {
    seen: [[bool; 256]; 16],
    unseen_counts: [u16; 16],
    counts: [[u32; 256]; 16],
    total: u64,
}

impl PfaCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        PfaCollector {
            seen: [[false; 256]; 16],
            unseen_counts: [256; 16],
            counts: [[0; 256]; 16],
            total: 0,
        }
    }

    /// Records one faulty ciphertext.
    pub fn observe(&mut self, ciphertext: &[u8; 16]) {
        self.total += 1;
        for (i, &b) in ciphertext.iter().enumerate() {
            self.counts[i][b as usize] += 1;
            if !self.seen[i][b as usize] {
                self.seen[i][b as usize] = true;
                self.unseen_counts[i] -= 1;
            }
        }
    }

    /// Ciphertexts observed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` when every byte position has exactly one value left
    /// unseen — the point at which the missing values are unambiguous.
    pub fn all_positions_determined(&self) -> bool {
        self.unseen_counts.iter().all(|&u| u == 1)
    }

    /// Number of byte values not yet observed at `position` — `1` means the
    /// missing value is determined; `0` means every value appeared (no
    /// last-round fault at this position).
    ///
    /// # Panics
    ///
    /// Panics if `position >= 16`.
    pub fn unseen_count(&self, position: usize) -> u16 {
        self.unseen_counts[position]
    }

    /// The number of positions already down to a single unseen value.
    pub fn determined_positions(&self) -> usize {
        self.unseen_counts.iter().filter(|&&u| u == 1).count()
    }

    /// The unique missing value per position, where determined.
    pub fn missing_values(&self) -> [Option<u8>; 16] {
        let mut out = [None; 16];
        for (o, (unseen, seen)) in out
            .iter_mut()
            .zip(self.unseen_counts.iter().zip(&self.seen))
        {
            if *unseen == 1 {
                *o = seen.iter().position(|&s| !s).map(|v| v as u8);
            }
        }
        out
    }

    /// The most frequent value per position — under the fault, the doubled
    /// value `S[j] ⊕ δ ⊕ k10[i]` (a statistical alternative to the exact
    /// missing-value test; needs more ciphertexts to stabilise).
    pub fn argmax_values(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (o, counts) in out.iter_mut().zip(&self.counts) {
            *o = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(v, _)| v as u8)
                .expect("256 buckets");
        }
        out
    }

    /// Completes the analysis knowing the faulted entry's original output
    /// value `v = S[j]` (the attacker knows `j` from templating and the
    /// S-box is public).
    pub fn analyze_known_fault(&self, missing_sbox_output: u8) -> PfaAnalysis {
        let missing = self.missing_values();
        let mut key = [None; 16];
        for i in 0..16 {
            key[i] = missing[i].map(|m| m ^ missing_sbox_output);
        }
        PfaAnalysis {
            last_round_key: key,
            ciphertexts: self.total,
        }
    }

    /// Completes the analysis *without* knowing which entry was faulted:
    /// tries all 256 possible values of `v`, checking each candidate master
    /// key against one known (plaintext, faulty-free ciphertext) pair.
    ///
    /// Returns `None` if the positions are not all determined or no
    /// candidate validates.
    pub fn analyze_unknown_fault(
        &self,
        known_plain: &[u8; 16],
        known_cipher: &[u8; 16],
    ) -> Option<PfaAnalysis> {
        let missing = self.missing_values();
        let m: Vec<u8> = missing
            .iter()
            .map(|o| (*o)?.into())
            .collect::<Option<Vec<_>>>()?;
        for v in 0..=255u8 {
            let mut rk10 = [0u8; 16];
            for i in 0..16 {
                rk10[i] = m[i] ^ v;
            }
            let master = invert_last_round_key_128(&rk10);
            let mut block = *known_plain;
            use ciphers::BlockCipher;
            ReferenceAes::new_128(&master).encrypt_block(&mut block);
            if &block == known_cipher {
                let mut key = [None; 16];
                for i in 0..16 {
                    key[i] = Some(rk10[i]);
                }
                return Some(PfaAnalysis {
                    last_round_key: key,
                    ciphertexts: self.total,
                });
            }
        }
        None
    }
}

impl Default for PfaCollector {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a PFA run: the recovered last-round key (possibly partial).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfaAnalysis {
    last_round_key: [Option<u8>; 16],
    ciphertexts: u64,
}

impl PfaAnalysis {
    /// The recovered last-round key bytes (`None` where undetermined).
    pub fn last_round_key(&self) -> [Option<u8>; 16] {
        self.last_round_key
    }

    /// The full last-round key, if every byte is determined.
    pub fn full_last_round_key(&self) -> Option<[u8; 16]> {
        let mut out = [0u8; 16];
        for (o, byte) in out.iter_mut().zip(&self.last_round_key) {
            *o = (*byte)?;
        }
        Some(out)
    }

    /// The AES-128 master key (inverted key schedule), if complete.
    pub fn master_key(&self) -> Option<[u8; 16]> {
        self.full_last_round_key()
            .map(|rk| invert_last_round_key_128(&rk))
    }

    /// Ciphertexts consumed to reach this analysis.
    pub fn ciphertexts(&self) -> u64 {
        self.ciphertexts
    }
}

/// Coupon-collector estimate of the faulty ciphertexts needed until every
/// position has seen all 255 possible values: ≈ `255·H(255) ≈ 1567`, plus a
/// tail for the slowest of `positions` parallel collectors. Matches the
/// ≈2000 reported by the PFA paper for full AES-128 key recovery.
pub fn expected_ciphertexts_for_full_key(positions: usize) -> f64 {
    let h255: f64 = (1..=255).map(|k| 1.0 / k as f64).sum();
    let base = 255.0 * h255;
    // The maximum of `positions` coupon collectors exceeds one by roughly
    // 255·ln(positions).
    base + 255.0 * (positions as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciphers::{BlockCipher, RamTableSource, SboxAes, TableImage};
    use rand::{Rng, SeedableRng};

    fn faulty_victim(key: &[u8; 16], entry: usize, bit: u8) -> SboxAes<RamTableSource> {
        let mut image = TableImage::sbox().to_vec();
        image[entry] ^= 1 << bit;
        SboxAes::new_128(key, RamTableSource::new(image))
    }

    #[test]
    fn recovers_key_with_known_fault() {
        let key = *b"0123456789abcdef";
        let (entry, bit) = (0x77usize, 1u8);
        let mut victim = faulty_victim(&key, entry, bit);
        let mut collector = PfaCollector::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        while !collector.all_positions_determined() {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
            assert!(collector.total() < 50_000, "collector failed to converge");
        }
        let analysis = collector.analyze_known_fault(TableImage::sbox()[entry]);
        assert_eq!(analysis.master_key(), Some(key));
        // Convergence should be in the coupon-collector regime.
        let expected = expected_ciphertexts_for_full_key(16);
        assert!(
            (analysis.ciphertexts() as f64) < expected * 3.0,
            "took {} ciphertexts, expected around {expected}",
            analysis.ciphertexts()
        );
    }

    #[test]
    fn recovers_key_with_unknown_fault() {
        let key = *b"totally secret!!";
        let mut victim = faulty_victim(&key, 0x05, 6);
        let mut collector = PfaCollector::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        while !collector.all_positions_determined() {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
        }
        // One known pair from before the fault was planted.
        let plain = *b"known plaintext!";
        let mut cipher = plain;
        ReferenceAes::new_128(&key).encrypt_block(&mut cipher);
        let analysis = collector
            .analyze_unknown_fault(&plain, &cipher)
            .expect("recovery");
        assert_eq!(analysis.master_key(), Some(key));
    }

    #[test]
    fn argmax_converges_to_doubled_value() {
        let key = [0xC3u8; 16];
        let (entry, bit) = (0x10usize, 0u8);
        let mut victim = faulty_victim(&key, entry, bit);
        let mut collector = PfaCollector::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        for _ in 0..60_000 {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
        }
        let sbox = TableImage::sbox();
        let doubled = sbox[entry] ^ (1 << bit);
        let rk10 = ReferenceAes::new_128(&key).round_keys().round_key(10);
        let argmax = collector.argmax_values();
        let correct = (0..16).filter(|&i| argmax[i] == doubled ^ rk10[i]).count();
        assert!(correct >= 14, "only {correct}/16 argmax positions matched");
    }

    #[test]
    fn unfaulted_cipher_never_determines() {
        // Without a fault every value appears; positions never reach
        // exactly-one-unseen, they reach zero-unseen.
        let key = [1u8; 16];
        let mut victim = SboxAes::new_128(&key, RamTableSource::new(TableImage::sbox().to_vec()));
        let mut collector = PfaCollector::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        for _ in 0..20_000 {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
        }
        assert!(!collector.all_positions_determined());
        assert_eq!(collector.missing_values(), [None; 16]);
    }

    #[test]
    fn expected_ciphertexts_matches_pfa_paper_ballpark() {
        let n = expected_ciphertexts_for_full_key(16);
        assert!(
            (1500.0..2500.0).contains(&n),
            "estimate {n} out of the PFA ballpark"
        );
    }
}
