//! Fault models: what a Rowhammer flip does to a cipher table image.

use ciphers::{TableImage, FINAL_ROUND_S_LANE};

/// A persistent single-bit fault at a byte offset of a table image —
/// exactly what one Rowhammer flip produces.
///
/// # Examples
///
/// ```
/// use fault::TableFault;
/// let f = TableFault { offset: 10, bit: 7 };
/// let mut image = vec![0u8; 16];
/// f.apply(&mut image);
/// assert_eq!(image[10], 0x80);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableFault {
    /// Byte offset within the image.
    pub offset: usize,
    /// Bit within the byte (0 = LSB).
    pub bit: u8,
}

impl TableFault {
    /// XOR mask this fault applies to its byte.
    pub const fn delta(&self) -> u8 {
        1 << self.bit
    }

    /// Applies the fault to an image in place.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the image or `bit >= 8`.
    pub fn apply(&self, image: &mut [u8]) {
        assert!(self.bit < 8, "bit index must be 0..8");
        image[self.offset] ^= self.delta();
    }

    /// Classifies this fault against the 4096-byte `Te0..Te3` image.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 4096`.
    pub fn classify_te(&self) -> TeFaultClass {
        let (table, entry, lane) = TableImage::te_locate(self.offset);
        if lane == FINAL_ROUND_S_LANE[table] {
            // Ciphertext positions 4c+0 read Te2, 4c+1 Te3, 4c+2 Te0,
            // 4c+3 Te1 in the final round.
            let slot = match table {
                2 => 0,
                3 => 1,
                0 => 2,
                _ => 3,
            };
            TeFaultClass::SLane {
                table,
                entry,
                delta: self.delta(),
                positions: [slot, slot + 4, slot + 8, slot + 12],
            }
        } else {
            TeFaultClass::MiddleRoundsOnly { table, entry, lane }
        }
    }
}

/// What a bit flip in the T-table page does to the cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeFaultClass {
    /// The flip hit the byte lane the final round extracts as `S[x]`: four
    /// ciphertext positions see a faulted last-round S-box — directly
    /// PFA-exploitable.
    SLane {
        /// Faulted table (0..4).
        table: usize,
        /// Faulted entry (the S-box input whose output changed).
        entry: usize,
        /// XOR applied to `S[entry]` at the affected positions.
        delta: u8,
        /// The four affected ciphertext byte positions.
        positions: [usize; 4],
    },
    /// The flip only corrupts middle rounds (the `2S`/`3S` lanes): the
    /// ciphertexts are wrong but the last round is clean, so missing-value
    /// PFA does not apply — the attacker re-steers for a better flip.
    MiddleRoundsOnly {
        /// Faulted table.
        table: usize,
        /// Faulted entry.
        entry: usize,
        /// Faulted little-endian lane.
        lane: usize,
    },
}

impl TeFaultClass {
    /// Returns `true` if the fault is directly PFA-exploitable.
    pub const fn is_exploitable(&self) -> bool {
        matches!(self, TeFaultClass::SLane { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_s_lane_per_table() {
        // Table 0's S-lane is lane 1.
        let f = TableFault {
            offset: TableImage::te_entry_offset(0, 0x20) + 1,
            bit: 0,
        };
        match f.classify_te() {
            TeFaultClass::SLane {
                table,
                entry,
                delta,
                positions,
            } => {
                assert_eq!((table, entry, delta), (0, 0x20, 1));
                assert_eq!(positions, [2, 6, 10, 14]);
            }
            other => panic!("expected SLane, got {other:?}"),
        }
        // Table 2's S-lane is lane 3 → positions 0,4,8,12.
        let f = TableFault {
            offset: TableImage::te_entry_offset(2, 0x01) + 3,
            bit: 6,
        };
        match f.classify_te() {
            TeFaultClass::SLane { positions, .. } => assert_eq!(positions, [0, 4, 8, 12]),
            other => panic!("expected SLane, got {other:?}"),
        }
    }

    #[test]
    fn classify_middle_round_lane() {
        // Lane 0 of table 0 carries 3S — middle rounds only.
        let f = TableFault {
            offset: TableImage::te_entry_offset(0, 0x10),
            bit: 2,
        };
        assert!(matches!(
            f.classify_te(),
            TeFaultClass::MiddleRoundsOnly {
                table: 0,
                entry: 0x10,
                lane: 0
            }
        ));
        assert!(!f.classify_te().is_exploitable());
    }

    #[test]
    fn exploitable_fraction_is_one_quarter() {
        // Exactly one lane in four is an S-lane, uniformly over the page.
        let exploitable = (0..4096)
            .filter(|&off| {
                TableFault {
                    offset: off,
                    bit: 0,
                }
                .classify_te()
                .is_exploitable()
            })
            .count();
        assert_eq!(exploitable, 1024);
    }

    #[test]
    fn apply_is_involution() {
        let f = TableFault { offset: 5, bit: 4 };
        let mut image = vec![0xAAu8; 8];
        f.apply(&mut image);
        f.apply(&mut image);
        assert_eq!(image, vec![0xAAu8; 8]);
    }
}
