//! Persistent Fault Analysis against the T-table AES shape.
//!
//! A bit flip in the 4 KiB Te page is only *directly* exploitable when it
//! lands in one of the final-round S-lanes (one byte in four — see
//! [`crate::TeFaultClass`]); it then faults exactly four ciphertext
//! positions. Each steered fault therefore yields four last-round key bytes;
//! the attack loop re-steers with different flip offsets until the four
//! table groups are all covered and the 16-byte key is complete. This module
//! accumulates those partial recoveries.

use ciphers::{invert_last_round_key_128, TableImage};

use crate::model::{TableFault, TeFaultClass};
use crate::pfa::PfaCollector;

/// A partially recovered AES last-round key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartialKey {
    bytes: [Option<u8>; 16],
}

impl PartialKey {
    /// Creates an empty partial key.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-position bytes.
    pub fn bytes(&self) -> [Option<u8>; 16] {
        self.bytes
    }

    /// Number of determined bytes.
    pub fn known(&self) -> usize {
        self.bytes.iter().filter(|b| b.is_some()).count()
    }

    /// Merges another partial key in; conflicting bytes are overwritten by
    /// `other` (later faults supersede — useful when an earlier analysis was
    /// polluted).
    pub fn merge(&mut self, other: &PartialKey) {
        for i in 0..16 {
            if other.bytes[i].is_some() {
                self.bytes[i] = other.bytes[i];
            }
        }
    }

    /// The full last-round key, if complete.
    pub fn full(&self) -> Option<[u8; 16]> {
        let mut out = [0u8; 16];
        for (o, byte) in out.iter_mut().zip(&self.bytes) {
            *o = (*byte)?;
        }
        Some(out)
    }

    /// The AES-128 master key, if complete.
    pub fn master_key(&self) -> Option<[u8; 16]> {
        self.full().map(|rk| invert_last_round_key_128(&rk))
    }
}

/// Multi-fault PFA driver for T-table AES.
///
/// # Examples
///
/// See `tests/` and the `pfa_key_recovery` example; the flow is: for each
/// steered fault, feed its ciphertexts into a [`PfaCollector`], then call
/// [`TTablePfa::absorb`] with the fault location.
#[derive(Debug, Clone, Default)]
pub struct TTablePfa {
    partial: PartialKey,
    faults_used: u32,
}

impl TTablePfa {
    /// Creates an empty driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated partial key.
    pub fn partial(&self) -> &PartialKey {
        &self.partial
    }

    /// Number of exploitable faults absorbed.
    pub fn faults_used(&self) -> u32 {
        self.faults_used
    }

    /// Absorbs the statistics collected under `fault`. Returns the four
    /// positions recovered, or `None` if the fault was not exploitable (or
    /// the collector had undetermined positions among the affected ones).
    pub fn absorb(&mut self, fault: TableFault, collector: &PfaCollector) -> Option<[usize; 4]> {
        let TeFaultClass::SLane {
            entry, positions, ..
        } = fault.classify_te()
        else {
            return None;
        };
        let v = TableImage::sbox()[entry];
        let missing = collector.missing_values();
        let mut update = PartialKey::new();
        for &p in &positions {
            update.bytes[p] = Some(missing[p]? ^ v);
        }
        self.partial.merge(&update);
        self.faults_used += 1;
        Some(positions)
    }

    /// The AES-128 master key, once all 16 bytes are covered.
    pub fn master_key(&self) -> Option<[u8; 16]> {
        self.partial.master_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciphers::{BlockCipher, RamTableSource, TTableAes, FINAL_ROUND_S_LANE};
    use rand::{Rng, SeedableRng};

    /// Runs one fault campaign: plant `fault`, collect ciphertexts until the
    /// affected positions are determined, and absorb into the driver.
    fn run_campaign(
        key: &[u8; 16],
        fault: TableFault,
        driver: &mut TTablePfa,
        rng: &mut rand::rngs::StdRng,
    ) {
        let mut image = TableImage::te_tables();
        fault.apply(&mut image);
        let mut victim = TTableAes::new_128(key, RamTableSource::new(image));
        let TeFaultClass::SLane { positions, .. } = fault.classify_te() else {
            panic!("test fault must be exploitable");
        };
        let mut collector = PfaCollector::new();
        loop {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
            let missing = collector.missing_values();
            if positions.iter().all(|&p| missing[p].is_some()) {
                break;
            }
            assert!(collector.total() < 100_000, "campaign failed to converge");
        }
        driver
            .absorb(fault, &collector)
            .expect("exploitable fault absorbs");
    }

    #[test]
    fn four_faults_recover_full_key() {
        let key = *b"t-table aes key!";
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let mut driver = TTablePfa::new();
        // One S-lane fault per table covers all 16 positions.
        for (table, s_lane) in FINAL_ROUND_S_LANE.iter().enumerate() {
            let entry = 0x30 + table; // arbitrary distinct entries
            let offset = TableImage::te_entry_offset(table, entry) + s_lane;
            run_campaign(&key, TableFault { offset, bit: 2 }, &mut driver, &mut rng);
        }
        assert_eq!(driver.faults_used(), 4);
        assert_eq!(driver.master_key(), Some(key));
    }

    #[test]
    fn single_fault_recovers_exactly_four_bytes() {
        let key = [0x3Cu8; 16];
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let mut driver = TTablePfa::new();
        let offset = TableImage::te_entry_offset(1, 0xAB) + FINAL_ROUND_S_LANE[1];
        run_campaign(&key, TableFault { offset, bit: 7 }, &mut driver, &mut rng);
        assert_eq!(driver.partial().known(), 4);
        assert_eq!(driver.master_key(), None);
        // The four recovered bytes are correct.
        use ciphers::ReferenceAes;
        let rk10 = ReferenceAes::new_128(&key).round_keys().round_key(10);
        for (i, b) in driver.partial().bytes().iter().enumerate() {
            if let Some(b) = b {
                assert_eq!(*b, rk10[i], "position {i}");
            }
        }
    }

    #[test]
    fn non_exploitable_fault_is_rejected() {
        let mut driver = TTablePfa::new();
        // Lane 0 of table 0 carries 3S, not S.
        let fault = TableFault {
            offset: TableImage::te_entry_offset(0, 5),
            bit: 0,
        };
        assert!(driver.absorb(fault, &PfaCollector::new()).is_none());
        assert_eq!(driver.faults_used(), 0);
    }
}
