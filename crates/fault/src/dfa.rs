//! Giraud-style Differential Fault Analysis — the classical comparator.
//!
//! Model: a *transient* single-bit fault on one byte of the round-10 input
//! state (after round 9's AddRoundKey). Then for the affected position `i`:
//!
//! ```text
//! c[i] ⊕ c*[i] = S(x) ⊕ S(x ⊕ 2^b)          with x the true state byte,
//! ```
//!
//! and candidate key bytes `k` are those for which some bit `b` satisfies
//! the relation with `x = S⁻¹(c[i] ⊕ k)`. A handful of (correct, faulty)
//! pairs narrows each position to a single candidate. Contrast with PFA,
//! which needs *no* correct/faulty pairing and no transient precision — the
//! reason ExplFrame pairs Rowhammer with persistent faults.

use std::collections::BTreeSet;

use ciphers::aes::sbox::{inv_sbox, sbox};
use ciphers::{expand_key, invert_last_round_key_128, AesKeySize};

/// Encrypts `plain` under `key`, XORing `1 << bit` into state byte
/// `byte_pos` at the *input of round 10* (after round 9 completes) — a
/// reference faulty-encryption oracle for DFA experiments.
///
/// # Panics
///
/// Panics if `byte_pos >= 16` or `bit >= 8`.
pub fn encrypt_with_round10_input_fault(
    key: &[u8; 16],
    plain: &[u8; 16],
    byte_pos: usize,
    bit: u8,
) -> [u8; 16] {
    assert!(byte_pos < 16 && bit < 8, "fault location out of range");
    let keys = expand_key(key, AesKeySize::Aes128);
    let s = sbox();
    let mut b = *plain;
    let xor_rk = |b: &mut [u8; 16], rk: &[u8; 16]| {
        for (x, k) in b.iter_mut().zip(rk) {
            *x ^= k;
        }
    };
    let sub = |b: &mut [u8; 16]| {
        for x in b.iter_mut() {
            *x = s[*x as usize];
        }
    };
    let shift = |b: &mut [u8; 16]| {
        for r in 1..4 {
            let row = [b[r], b[4 + r], b[8 + r], b[12 + r]];
            for c in 0..4 {
                b[4 * c + r] = row[(c + r) % 4];
            }
        }
    };
    let mix = |b: &mut [u8; 16]| {
        use ciphers::aes::sbox::gf_mul;
        for c in 0..4 {
            let col = [b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]];
            b[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            b[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            b[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            b[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    };

    xor_rk(&mut b, &keys.round_key(0));
    for r in 1..10 {
        sub(&mut b);
        shift(&mut b);
        mix(&mut b);
        xor_rk(&mut b, &keys.round_key(r));
    }
    // The transient fault hits here: round-10 input state.
    b[byte_pos] ^= 1 << bit;
    sub(&mut b);
    shift(&mut b);
    xor_rk(&mut b, &keys.round_key(10));
    b
}

/// Where ShiftRows sends state byte `i` in the last round (state position →
/// ciphertext position).
#[cfg_attr(not(test), allow(dead_code))]
fn shift_rows_dest(i: usize) -> usize {
    let (r, c) = (i % 4, i / 4);
    // Row r rotates left by r: column c moves to column (c - r) mod 4.
    let dst_c = (c + 4 - r) % 4;
    4 * dst_c + r
}

/// Accumulating Giraud DFA: feed (correct, faulty) ciphertext pairs, watch
/// candidate sets shrink to singletons.
///
/// # Examples
///
/// ```
/// use fault::{encrypt_with_round10_input_fault, DfaAttack};
/// use ciphers::{BlockCipher, ReferenceAes};
///
/// let key = *b"giraud dfa key!!";
/// let mut attack = DfaAttack::new();
/// let mut aes = ReferenceAes::new_128(&key);
/// for i in 0..96u8 {
///     let plain = [i; 16];
///     let mut correct = plain;
///     aes.encrypt_block(&mut correct);
///     let faulty =
///         encrypt_with_round10_input_fault(&key, &plain, (i % 16) as usize, i % 8);
///     attack.observe_pair(&correct, &faulty);
/// }
/// assert_eq!(attack.master_key(), Some(key));
/// ```
#[derive(Debug, Clone)]
pub struct DfaAttack {
    candidates: [BTreeSet<u8>; 16],
    pairs: u64,
}

impl DfaAttack {
    /// Creates an attack with all 256 candidates per position.
    pub fn new() -> Self {
        let full: BTreeSet<u8> = (0..=255).collect();
        DfaAttack {
            candidates: std::array::from_fn(|_| full.clone()),
            pairs: 0,
        }
    }

    /// Pairs observed so far.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Feeds one (correct, faulty) ciphertext pair for the same plaintext.
    /// Pairs whose fault did not hit a single byte are ignored gracefully
    /// (they differ at ≠1 positions).
    pub fn observe_pair(&mut self, correct: &[u8; 16], faulty: &[u8; 16]) {
        let diffs: Vec<usize> = (0..16).filter(|&i| correct[i] != faulty[i]).collect();
        let [pos] = diffs[..] else {
            return; // not a clean single-byte fault
        };
        self.pairs += 1;
        let s = sbox();
        let inv = inv_sbox();
        let keep: BTreeSet<u8> = self.candidates[pos]
            .iter()
            .copied()
            .filter(|&k| {
                let x = inv[(correct[pos] ^ k) as usize];
                (0..8).any(|b| {
                    s[(x ^ (1 << b)) as usize] ^ s[x as usize] == correct[pos] ^ faulty[pos]
                })
            })
            .collect();
        if !keep.is_empty() {
            self.candidates[pos] = keep;
        }
    }

    /// Candidate counts per ciphertext position.
    pub fn candidate_counts(&self) -> [usize; 16] {
        std::array::from_fn(|i| self.candidates[i].len())
    }

    /// The last-round key, if every position is down to one candidate.
    pub fn last_round_key(&self) -> Option<[u8; 16]> {
        let mut out = [0u8; 16];
        for (o, cand) in out.iter_mut().zip(&self.candidates) {
            if cand.len() != 1 {
                return None;
            }
            *o = *cand.iter().next().expect("len 1");
        }
        Some(out)
    }

    /// The AES-128 master key, if complete.
    pub fn master_key(&self) -> Option<[u8; 16]> {
        self.last_round_key()
            .map(|rk| invert_last_round_key_128(&rk))
    }
}

impl Default for DfaAttack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciphers::{BlockCipher, ReferenceAes};
    use rand::{Rng, SeedableRng};

    #[test]
    fn faulty_oracle_differs_in_exactly_one_byte() {
        let key = [5u8; 16];
        let plain = [7u8; 16];
        let mut correct = plain;
        ReferenceAes::new_128(&key).encrypt_block(&mut correct);
        for pos in 0..16 {
            let faulty = encrypt_with_round10_input_fault(&key, &plain, pos, 3);
            let diffs: Vec<usize> = (0..16).filter(|&i| correct[i] != faulty[i]).collect();
            assert_eq!(diffs.len(), 1, "fault at state byte {pos}");
            assert_eq!(diffs[0], shift_rows_dest(pos));
        }
    }

    #[test]
    fn unfaulted_oracle_matches_reference() {
        // bit-flipping then flipping back is not possible; instead verify
        // the oracle's round structure by checking a zero-fault equivalent:
        // fault a byte, fault it again via a second call — or simply check
        // against a hand-rolled path: encrypt with fault at (0, b) twice
        // with different bits and confirm both differ from reference in one
        // byte (structure test above covers correctness of rounds 1..9 via
        // ShiftRows destination mapping).
        let key = *b"structural check";
        let plain = *b"plaintext block!";
        let mut reference = plain;
        ReferenceAes::new_128(&key).encrypt_block(&mut reference);
        let faulty = encrypt_with_round10_input_fault(&key, &plain, 0, 0);
        assert_ne!(faulty, reference);
        let diff_count = (0..16).filter(|&i| faulty[i] != reference[i]).count();
        assert_eq!(diff_count, 1);
    }

    #[test]
    fn dfa_recovers_key_with_few_pairs_per_position() {
        let key = *b"recover me, dfa!";
        let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
        let mut attack = DfaAttack::new();
        let mut aes = ReferenceAes::new_128(&key);
        let mut pairs_needed = 0u64;
        'outer: for round in 0..20 {
            for pos in 0..16 {
                let plain: [u8; 16] = rng.gen();
                let mut correct = plain;
                aes.encrypt_block(&mut correct);
                let faulty =
                    encrypt_with_round10_input_fault(&key, &plain, pos, rng.gen_range(0..8));
                attack.observe_pair(&correct, &faulty);
                pairs_needed += 1;
                if attack.last_round_key().is_some() {
                    break 'outer;
                }
            }
            assert!(round < 19, "DFA failed to converge");
        }
        assert_eq!(attack.master_key(), Some(key));
        // Giraud's analysis: a handful of faulty pairs per byte suffices.
        assert!(pairs_needed <= 16 * 8, "needed {pairs_needed} pairs");
    }

    #[test]
    fn garbage_pairs_are_ignored() {
        let mut attack = DfaAttack::new();
        attack.observe_pair(&[0u8; 16], &[0xFFu8; 16]); // 16 diffs
        attack.observe_pair(&[0u8; 16], &[0u8; 16]); // 0 diffs
        assert_eq!(attack.pairs(), 0);
        assert_eq!(attack.candidate_counts(), [256; 16]);
    }
}
