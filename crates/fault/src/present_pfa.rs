//! Persistent Fault Analysis of PRESENT-80.
//!
//! PRESENT's last round is `c = P(S(x)) ⊕ K32` with `P` a public bit
//! permutation. Since XOR commutes with bit permutations,
//! `P⁻¹(c) = S(x) ⊕ P⁻¹(K32)`: the per-nibble missing-value analysis runs on
//! `P⁻¹(c)` and recovers `κ = P⁻¹(K32)` nibble by nibble. The 80-bit master
//! key follows by inverting the key schedule over the 2¹⁶ unknown low
//! register bits, checked against one known (plaintext, ciphertext) pair.

use ciphers::{p_layer, p_layer_inverse, PRESENT_SBOX};

const MASK80: u128 = (1u128 << 80) - 1;

/// Inverse of the PRESENT S-box.
fn inv_present_sbox() -> [u8; 16] {
    let mut inv = [0u8; 16];
    for (i, &v) in PRESENT_SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Inverts the PRESENT-80 key schedule: given the full 80-bit key register
/// as it stood when round key 32 was extracted, returns the master key.
pub fn invert_present80_schedule(register_at_k32: u128) -> [u8; 10] {
    let inv_s = inv_present_sbox();
    let mut k = register_at_k32 & MASK80;
    // Forward updates used counters 1..=31 after extracting K1..=K31.
    for counter in (1..=31u128).rev() {
        k ^= counter << 15;
        let nib = ((k >> 76) & 0xF) as usize;
        k = (k & !(0xFu128 << 76)) | ((inv_s[nib] as u128) << 76);
        k = ((k >> 61) | (k << 19)) & MASK80;
    }
    let mut key = [0u8; 10];
    for (i, b) in key.iter_mut().enumerate() {
        *b = (k >> (8 * (9 - i))) as u8;
    }
    key
}

/// Missing-nibble collector for PRESENT PFA.
///
/// # Examples
///
/// See the `fault` crate tests; usage parallels [`crate::PfaCollector`].
#[derive(Debug, Clone)]
pub struct PresentPfa {
    seen: [[bool; 16]; 16],
    unseen: [u8; 16],
    total: u64,
}

impl PresentPfa {
    /// Creates an empty collector.
    pub fn new() -> Self {
        PresentPfa {
            seen: [[false; 16]; 16],
            unseen: [16; 16],
            total: 0,
        }
    }

    /// Records one faulty ciphertext.
    pub fn observe(&mut self, ciphertext: &[u8; 8]) {
        self.total += 1;
        let d = p_layer_inverse(u64::from_be_bytes(*ciphertext));
        for i in 0..16 {
            let nib = ((d >> (4 * i)) & 0xF) as usize;
            if !self.seen[i][nib] {
                self.seen[i][nib] = true;
                self.unseen[i] -= 1;
            }
        }
    }

    /// Ciphertexts observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` when every nibble position has exactly one unseen
    /// value.
    pub fn all_positions_determined(&self) -> bool {
        self.unseen.iter().all(|&u| u == 1)
    }

    /// Number of nibble values not yet observed at `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= 16`.
    pub fn unseen_count(&self, position: usize) -> u8 {
        self.unseen[position]
    }

    /// The unique missing nibble per position, where determined.
    pub fn missing_nibbles(&self) -> [Option<u8>; 16] {
        let mut out = [None; 16];
        for (o, (unseen, seen)) in out.iter_mut().zip(self.unseen.iter().zip(&self.seen)) {
            if *unseen == 1 {
                *o = seen.iter().position(|&s| !s).map(|v| v as u8);
            }
        }
        out
    }

    /// Recovers the last round key `K32`, knowing the faulted S-box entry's
    /// original output `v = S[j]` (4 bits).
    ///
    /// Returns `None` until all positions are determined.
    pub fn recover_round32_key(&self, missing_sbox_output: u8) -> Option<u64> {
        let missing = self.missing_nibbles();
        let mut kappa = 0u64;
        for (i, m) in missing.iter().enumerate() {
            let nib = (m.as_ref()? ^ missing_sbox_output) & 0xF;
            kappa |= (nib as u64) << (4 * i);
        }
        Some(p_layer(kappa))
    }

    /// Recovers the 80-bit master key: brute-forces the 16 hidden register
    /// bits, validating each candidate with `check` (typically an encryption
    /// of a known plaintext compared against its known ciphertext).
    ///
    /// Returns `None` until determined, or if no candidate validates.
    pub fn recover_master_key(
        &self,
        missing_sbox_output: u8,
        mut check: impl FnMut(&[u8; 10]) -> bool,
    ) -> Option<[u8; 10]> {
        let k32 = self.recover_round32_key(missing_sbox_output)?;
        for low in 0..(1u32 << 16) {
            let register = ((k32 as u128) << 16) | low as u128;
            let candidate = invert_present80_schedule(register);
            if check(&candidate) {
                return Some(candidate);
            }
        }
        None
    }
}

impl Default for PresentPfa {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciphers::{
        present80_round_keys, present_sbox_image, BlockCipher, Present80, RamTableSource,
    };
    use rand::{Rng, SeedableRng};

    #[test]
    fn schedule_inversion_roundtrips() {
        use rand::RngCore;
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..50 {
            let mut key = [0u8; 10];
            rng.fill_bytes(&mut key);
            // Recompute the register at K32 by replaying the forward
            // schedule.
            let mut k: u128 = 0;
            for &b in &key {
                k = (k << 8) | b as u128;
            }
            for i in 1..=31u128 {
                k = ((k << 61) | (k >> 19)) & MASK80;
                let nib = ((k >> 76) & 0xF) as usize;
                k = (k & !(0xFu128 << 76)) | ((PRESENT_SBOX[nib] as u128) << 76);
                k ^= i << 15;
            }
            assert_eq!(invert_present80_schedule(k), key);
            // And the extracted top 64 bits match the official round key.
            assert_eq!((k >> 16) as u64, present80_round_keys(&key)[31]);
        }
    }

    #[test]
    fn recovers_round32_key() {
        let key: [u8; 10] = [9, 8, 7, 6, 5, 4, 3, 2, 1, 0];
        let (entry, bit) = (0xB_usize, 2u8);
        let mut image = present_sbox_image().to_vec();
        image[entry] ^= 1 << bit;
        let mut victim = Present80::new(&key, RamTableSource::new(image));
        let mut pfa = PresentPfa::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(66);
        while !pfa.all_positions_determined() {
            let mut block: [u8; 8] = rng.gen();
            victim.encrypt_block(&mut block);
            pfa.observe(&block);
            assert!(pfa.total() < 20_000, "failed to converge");
        }
        let v = PRESENT_SBOX[entry];
        assert_eq!(
            pfa.recover_round32_key(v),
            Some(present80_round_keys(&key)[31])
        );
        // Convergence is fast: 16-value coupon collectors.
        assert!(pfa.total() < 2000, "took {} ciphertexts", pfa.total());
    }

    #[test]
    fn recovers_master_key_with_known_pair() {
        let key: [u8; 10] = *b"presentkey";
        let (entry, bit) = (0x3usize, 0u8);
        let mut image = present_sbox_image().to_vec();
        image[entry] ^= 1 << bit;
        let mut victim = Present80::new(&key, RamTableSource::new(image));
        let mut pfa = PresentPfa::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        while !pfa.all_positions_determined() {
            let mut block: [u8; 8] = rng.gen();
            victim.encrypt_block(&mut block);
            pfa.observe(&block);
        }
        // Known pair from before the fault.
        let plain = *b"\x01\x02\x03\x04\x05\x06\x07\x08";
        let mut cipher = plain;
        Present80::new(&key, RamTableSource::new(present_sbox_image().to_vec()))
            .encrypt_block(&mut cipher);
        let recovered = pfa
            .recover_master_key(PRESENT_SBOX[entry], |cand| {
                let mut b = plain;
                Present80::new(cand, RamTableSource::new(present_sbox_image().to_vec()))
                    .encrypt_block(&mut b);
                b == cipher
            })
            .expect("master key recovery");
        assert_eq!(recovered, key);
    }

    #[test]
    fn undetermined_returns_none() {
        let pfa = PresentPfa::new();
        assert_eq!(pfa.recover_round32_key(0), None);
    }
}
