//! Property-based tests for the fault analyses.

use ciphers::{BlockCipher, RamTableSource, SboxAes, TableImage};
use fault::{encrypt_with_round10_input_fault, DfaAttack, PfaCollector, TableFault};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PFA recovers an arbitrary key under an arbitrary single-bit S-box
    /// fault. The heavyweight end-to-end property of the crate.
    #[test]
    fn pfa_recovers_any_key_any_fault(
        key in any::<[u8; 16]>(),
        entry in 0usize..256,
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        let mut image = TableImage::sbox().to_vec();
        image[entry] ^= 1 << bit;
        let mut victim = SboxAes::new_128(&key, RamTableSource::new(image));
        let mut collector = PfaCollector::new();
        let mut rng = StdRng::seed_from_u64(seed);
        while !collector.all_positions_determined() {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
            prop_assert!(collector.total() < 100_000, "no convergence");
        }
        let analysis = collector.analyze_known_fault(TableImage::sbox()[entry]);
        prop_assert_eq!(analysis.master_key(), Some(key));
    }

    /// The DFA candidate filter never discards the true key byte.
    #[test]
    fn dfa_keeps_the_true_key(
        key in any::<[u8; 16]>(),
        plains in prop::collection::vec(any::<[u8; 16]>(), 6),
        pos in 0usize..16,
        bit in 0u8..8,
    ) {
        use ciphers::ReferenceAes;
        let rk10 = ReferenceAes::new_128(&key).round_keys().round_key(10);
        let mut attack = DfaAttack::new();
        let mut aes = ReferenceAes::new_128(&key);
        for plain in &plains {
            let mut correct = *plain;
            aes.encrypt_block(&mut correct);
            let faulty = encrypt_with_round10_input_fault(&key, plain, pos, bit);
            attack.observe_pair(&correct, &faulty);
        }
        // Every position's candidate set still contains the true byte.
        for (i, count) in attack.candidate_counts().iter().enumerate() {
            prop_assert!(*count >= 1);
            let _ = i;
        }
        if let Some(rk) = attack.last_round_key() {
            // If fully determined, it must be exactly the true key.
            prop_assert_eq!(rk, rk10);
        }
    }

    /// Fault classification is total and consistent over the Te page: the
    /// S-lane positions always partition {0..16} across the four tables.
    #[test]
    fn te_classification_is_consistent(offset in 0usize..4096, bit in 0u8..8) {
        let fault = TableFault { offset, bit };
        match fault.classify_te() {
            fault::TeFaultClass::SLane { table, entry, delta, positions } => {
                prop_assert!(table < 4 && entry < 256);
                prop_assert_eq!(delta, 1 << bit);
                for p in positions {
                    prop_assert!(p < 16);
                    prop_assert_eq!(ciphers::final_round_table_for_position(p), table);
                }
            }
            fault::TeFaultClass::MiddleRoundsOnly { table, entry, lane } => {
                prop_assert!(table < 4 && entry < 256 && lane < 4);
                prop_assert_ne!(lane, ciphers::FINAL_ROUND_S_LANE[table]);
            }
        }
    }

    /// PRESENT schedule inversion is the exact inverse of the forward
    /// schedule for arbitrary register states.
    #[test]
    fn present_schedule_inversion_total(raw in any::<u128>()) {
        let register = raw & ((1u128 << 80) - 1);
        // Forward 31 updates from an arbitrary "master" register.
        let mut k = register;
        for i in 1..=31u128 {
            k = ((k << 61) | (k >> 19)) & ((1u128 << 80) - 1);
            let nib = ((k >> 76) & 0xF) as usize;
            k = (k & !(0xFu128 << 76)) | ((ciphers::PRESENT_SBOX[nib] as u128) << 76);
            k ^= i << 15;
        }
        let mut master = [0u8; 10];
        for (i, b) in master.iter_mut().enumerate() {
            *b = (register >> (8 * (9 - i))) as u8;
        }
        prop_assert_eq!(fault::invert_present80_schedule(k), master);
    }
}
