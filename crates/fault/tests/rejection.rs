//! Rejection paths of the fault solvers: ciphertexts with *zero* faulty
//! bytes (the table was never corrupted, or ECC corrected it away) and
//! multi-byte double faults (two table entries corrupted at once — the
//! shape an ECC-detectable double-bit word fault produces when its bits
//! span bytes) must yield clean `None`/undetermined results, never panics
//! or bogus keys.

use ciphers::{
    present80_round_keys, present_sbox_image, BlockCipher, Present80, RamTableSource, SboxAes,
    TTableAes, TableImage, FINAL_ROUND_S_LANE, PRESENT_SBOX,
};
use fault::{PfaCollector, PresentPfa, TTablePfa, TableFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KEY: [u8; 16] = *b"rejection tests!";

fn collect_aes(image: Vec<u8>, budget: u64, seed: u64) -> PfaCollector {
    let mut victim = SboxAes::new_128(&KEY, RamTableSource::new(image));
    let mut collector = PfaCollector::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..budget {
        let mut block: [u8; 16] = rng.gen();
        victim.encrypt_block(&mut block);
        collector.observe(&block);
    }
    collector
}

#[test]
fn aes_pfa_rejects_zero_fault_ciphertexts() {
    // Clean table: every value eventually appears at every position, so
    // no position is ever "determined" and both analyses return nothing.
    let collector = collect_aes(TableImage::sbox().to_vec(), 12_000, 1);
    assert!(!collector.all_positions_determined());
    assert_eq!(collector.missing_values(), [None; 16]);
    assert_eq!(collector.analyze_known_fault(0x63).master_key(), None);
    assert!((0..16).all(|p| collector.unseen_count(p) == 0));

    let plain = *b"known plaintext!";
    let mut cipher = plain;
    SboxAes::new_128(&KEY, RamTableSource::new(TableImage::sbox().to_vec()))
        .encrypt_block(&mut cipher);
    assert!(collector.analyze_unknown_fault(&plain, &cipher).is_none());
}

#[test]
fn aes_pfa_rejects_multi_byte_double_faults() {
    // Two distinct S-box entries corrupted (an ECC-style double fault
    // whose bits span bytes): every position has *two* missing values, so
    // the single-missing-value statistics can never converge — and must
    // say so instead of producing a key.
    let mut image = TableImage::sbox().to_vec();
    image[0x11] ^= 0x04;
    image[0x2A] ^= 0x20;
    let collector = collect_aes(image, 20_000, 2);
    assert!(!collector.all_positions_determined());
    for p in 0..16 {
        assert!(
            collector.unseen_count(p) >= 2,
            "position {p} lost its second missing value"
        );
    }
    assert_eq!(collector.missing_values(), [None; 16]);
    assert_eq!(
        collector
            .analyze_known_fault(TableImage::sbox()[0x11])
            .master_key(),
        None
    );
}

#[test]
fn aes_pfa_still_converges_on_same_byte_double_bit_faults() {
    // Positive control: a double-*bit* fault confined to one entry is a
    // single missing value with a two-bit delta — PFA handles it.
    let entry = 0x4C;
    let mut image = TableImage::sbox().to_vec();
    image[entry] ^= 0b1001_0000;
    let collector = collect_aes(image, 20_000, 3);
    assert!(collector.all_positions_determined());
    assert_eq!(
        collector
            .analyze_known_fault(TableImage::sbox()[entry])
            .master_key(),
        Some(KEY)
    );
}

#[test]
fn present_pfa_rejects_zero_fault_and_double_faults() {
    let key: [u8; 10] = *b"presentkey";
    let run = |image: Vec<u8>| {
        let mut victim = Present80::new(&key, RamTableSource::new(image));
        let mut pfa = PresentPfa::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5_000 {
            let mut block: [u8; 8] = rng.gen();
            victim.encrypt_block(&mut block);
            pfa.observe(&block);
        }
        pfa
    };

    // Zero faulty nibbles.
    let clean = run(present_sbox_image().to_vec());
    assert!(!clean.all_positions_determined());
    assert_eq!(clean.recover_round32_key(0), None);
    assert_eq!(clean.recover_master_key(0, |_| true), None);

    // Two S-box entries corrupted at once: two missing nibbles per
    // position, never determined.
    let mut image = present_sbox_image().to_vec();
    image[0x3] ^= 0x1;
    image[0xB] ^= 0x2;
    let double = run(image);
    assert!(!double.all_positions_determined());
    assert_eq!(double.recover_round32_key(PRESENT_SBOX[0x3]), None);

    // Sanity: the round-32 key of the clean cipher is never "recovered".
    assert_ne!(
        clean.recover_round32_key(0),
        Some(present80_round_keys(&key)[31])
    );
}

#[test]
fn ttable_pfa_rejects_undetermined_collectors() {
    // An exploitable S-lane fault location, but a collector that saw a
    // *clean* T-table (e.g. ECC corrected the flip): absorb must decline
    // instead of merging garbage key bytes.
    let offset = TableImage::te_entry_offset(2, 0x77) + FINAL_ROUND_S_LANE[2];
    let fault = TableFault { offset, bit: 1 };
    let mut collector = PfaCollector::new();
    let mut victim = TTableAes::new_128(&KEY, RamTableSource::new(TableImage::te_tables()));
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..8_000 {
        let mut block: [u8; 16] = rng.gen();
        victim.encrypt_block(&mut block);
        collector.observe(&block);
    }
    let mut driver = TTablePfa::new();
    assert!(driver.absorb(fault, &collector).is_none());
    assert_eq!(driver.faults_used(), 0);
    assert_eq!(driver.partial().known(), 0);
    assert_eq!(driver.master_key(), None);
}
