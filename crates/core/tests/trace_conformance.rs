//! Conformance of the trace artifact: a pipeline's event stream, once
//! serialized through `campaign`'s JSON and re-parsed, must still satisfy
//! the phase-ordering invariants — phases appear in pipeline order, every
//! `template-started` is closed by a `template-finished`, round numbers
//! never decrease, per-round events follow the steer → hammer → collect →
//! analyze sequence, and the persisted `event_count` matches the
//! `TraceCollector` that produced it. The same invariants are applied to
//! whatever `results/trace.json` is on disk, so stale or hand-mangled
//! artifacts fail loudly.

use campaign::{trace_path, Json};
use explframe_core::{ExplFrame, ExplFrameConfig, TraceCollector};

/// Coarse pipeline rank of each event kind (first occurrences must be
/// nondecreasing in this order).
fn phase_rank(name: &str) -> Option<u32> {
    Some(match name {
        "template-started" | "template-finished" | "strategy-escalated" => 0,
        "templates-selected" => 1,
        "frame-released" => 2,
        "victim-steered" => 3,
        "hammer-finished" => 4,
        "ciphertexts-collected" => 5,
        "round-analyzed" => 6,
        "pipeline-finished" => 7,
        _ => return None,
    })
}

fn event_name(event: &Json) -> &str {
    event
        .get("event")
        .and_then(Json::as_str)
        .expect("every trace event carries an 'event' discriminator")
}

/// Asserts the ordering invariants over one parsed event array.
fn assert_trace_invariants(context: &str, events: &[Json]) {
    assert!(!events.is_empty(), "{context}: empty event stream");
    assert_eq!(
        event_name(&events[0]),
        "template-started",
        "{context}: traces start with templating"
    );
    // pipeline-finished, when the composition finalizes at all, is final
    // (custom compositions like t7's template-once/steer-many never call
    // finish() and legitimately end mid-round).
    if let Some(pos) = events
        .iter()
        .position(|e| event_name(e) == "pipeline-finished")
    {
        assert_eq!(
            pos,
            events.len() - 1,
            "{context}: events recorded after pipeline-finished"
        );
    }

    // Every known event kind; first occurrences in pipeline order.
    let mut last_first_rank = 0u32;
    let mut seen: Vec<&str> = Vec::new();
    // template-started / template-finished bracket correctly.
    let mut open_templates = 0i64;
    let mut finished_templates = 0u64;
    // Round numbers never decrease; per-round events keep phase order.
    let mut last_round = 0u64;
    let mut last_rank_in_round = 0u32;

    for event in events {
        let name = event_name(event);
        let rank =
            phase_rank(name).unwrap_or_else(|| panic!("{context}: unknown event kind {name:?}"));
        if !seen.contains(&name) {
            assert!(
                rank >= last_first_rank,
                "{context}: first {name:?} appeared after a later phase"
            );
            last_first_rank = rank;
            seen.push(name);
        }
        match name {
            "template-started" => {
                assert_eq!(open_templates, 0, "{context}: nested templating sweeps");
                open_templates += 1;
            }
            "template-finished" => {
                open_templates -= 1;
                finished_templates += 1;
                assert!(
                    open_templates >= 0,
                    "{context}: template-finished without a start"
                );
                assert!(
                    event.get("found").and_then(Json::as_u64).is_some(),
                    "{context}: template-finished lost its found count"
                );
            }
            _ => {}
        }
        if let Some(round) = event.get("round").and_then(Json::as_u64) {
            assert!(
                round >= last_round,
                "{context}: round went backwards ({last_round} -> {round})"
            );
            if round > last_round {
                last_round = round;
                last_rank_in_round = 0;
            }
            assert!(
                rank >= last_rank_in_round,
                "{context}: round {round} event {name:?} out of phase order"
            );
            last_rank_in_round = rank;
        }
    }
    assert_eq!(open_templates, 0, "{context}: unclosed templating sweep");
    assert!(
        finished_templates >= 1,
        "{context}: no completed templating sweep"
    );
}

/// Extracts the events array from a `traces.<name>` record and checks its
/// `event_count` against the array length.
fn record_events(context: &str, record: &Json) -> Vec<Json> {
    let count = record
        .get("event_count")
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{context}: record lost event_count"));
    let Some(Json::Arr(events)) = record.get("events") else {
        panic!("{context}: record lost its events array");
    };
    assert_eq!(
        count,
        events.len() as u64,
        "{context}: event_count disagrees with the events array"
    );
    events.clone()
}

#[test]
fn fresh_trace_survives_serialization_and_keeps_its_invariants() {
    let cfg = ExplFrameConfig::small_demo(3).with_template_pages(512);
    let mut trace = TraceCollector::new();
    let report = ExplFrame::new(cfg).run_traced(&mut trace).expect("run");
    assert!(!trace.is_empty());

    // Serialize exactly as TraceSink persists it, then re-parse through
    // the campaign JSON parser.
    let mut doc = Json::obj();
    trace.to_sink("conformance").merge_into(&mut doc);
    let text = doc.pretty();
    let parsed = Json::parse(&text).expect("trace document re-parses");
    let record = parsed
        .get("traces")
        .and_then(|t| t.get("conformance"))
        .expect("trace record present");

    let events = record_events("fresh trace", record);
    assert_eq!(
        events.len(),
        trace.len(),
        "serialized event count diverged from the collector"
    );
    assert_trace_invariants("fresh trace", &events);

    // The final event's outcome matches the report.
    let last = events.last().unwrap();
    assert_eq!(
        last.get("outcome").and_then(Json::as_str),
        Some(report.outcome.label())
    );
    assert_eq!(
        last.get("fault_rounds").and_then(Json::as_u64),
        Some(u64::from(report.fault_rounds))
    );
}

#[test]
fn traces_on_disk_conform() {
    // Every trace the experiment fleet has persisted must re-parse and
    // satisfy the same invariants. Skips silently when no artifact exists
    // (fresh checkout before any exp_* run).
    let path = trace_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let doc = Json::parse(&text).expect("results/trace.json re-parses");
    assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(1));
    let traces = doc.get("traces").expect("trace document has traces");
    let Some(entries) = traces.entries() else {
        panic!("traces is not an object");
    };
    assert!(!entries.is_empty(), "trace.json exists but holds no traces");
    for (name, record) in entries {
        let events = record_events(name, record);
        assert_trace_invariants(name, &events);
    }
}
