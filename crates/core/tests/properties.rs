//! Property-based tests for the attack-layer helpers.

use dram::WeakCellParams;
use explframe_core::{
    select_attack_pages, template_scan, template_usable, FlipTemplate, VictimCipherKind,
};
use machine::{MachineConfig, SimMachine, VirtAddr};
use memsim::CpuId;
use proptest::prelude::*;

fn arb_template() -> impl Strategy<Value = FlipTemplate> {
    (0u64..64, 0u16..4096, 0u8..8, any::<bool>(), 0.0f32..=1.0).prop_map(
        |(page, offset, bit, dir, repro)| FlipTemplate {
            page_index: page,
            page_va: VirtAddr(0x7f00_0000_0000 + page * 4096),
            page_offset: offset,
            bit,
            one_to_zero: dir,
            aggressor_above: VirtAddr(0),
            aggressor_below: VirtAddr(0),
            reproducibility: repro,
        },
    )
}

proptest! {
    /// Selected attack pages are unique, usable, and each had exactly one
    /// firing flip among the inputs.
    #[test]
    fn selection_invariants(templates in prop::collection::vec(arb_template(), 0..80)) {
        for kind in [
            VictimCipherKind::AesSbox,
            VictimCipherKind::AesTtable,
            VictimCipherKind::Present,
        ] {
            let selected = select_attack_pages(&templates, kind);
            let mut pages = std::collections::BTreeSet::new();
            for t in &selected {
                prop_assert!(pages.insert(t.page_index), "duplicate page selected");
                prop_assert!(template_usable(t, kind));
                // The selected flip must come from the input set.
                prop_assert!(templates.iter().any(|u| (
                    u.page_index, u.page_offset, u.bit
                ) == (t.page_index, t.page_offset, t.bit)));
            }
        }
    }

    /// Usability implies the offset is inside the victim's image.
    #[test]
    fn usable_templates_are_in_image(t in arb_template()) {
        for kind in [
            VictimCipherKind::AesSbox,
            VictimCipherKind::AesTtable,
            VictimCipherKind::Present,
        ] {
            if template_usable(&t, kind) {
                prop_assert!((t.page_offset as usize) < kind.image_len());
                prop_assert!(t.reproducibility >= 0.5);
            }
        }
    }

    /// Templating output is internally consistent for arbitrary small
    /// machines: unique locations, offsets within pages, aggressors mapped.
    #[test]
    fn template_scan_output_well_formed(seed in 0u64..12, density_exp in 0u32..2) {
        let density = [1e-5f64, 5e-5][density_exp as usize];
        let mut config = MachineConfig::small(seed);
        config.dram = config.dram.with_cells(WeakCellParams::flippy().with_density(density));
        let mut m = SimMachine::new(config);
        let pid = m.spawn(CpuId(0));
        let pages = 512u64;
        let base = m.mmap(pid, pages).unwrap();
        let scan = template_scan(&mut m, pid, base, pages, 400_000, 2).unwrap();

        let mut seen = std::collections::BTreeSet::new();
        for t in &scan.templates {
            prop_assert!(t.page_index < pages);
            prop_assert!((t.page_offset as u64) < 4096);
            prop_assert!(t.bit < 8);
            prop_assert!(seen.insert((t.page_index, t.page_offset, t.bit)));
            // Aggressors must still be translated (mapped) addresses.
            prop_assert!(m.translate(pid, t.aggressor_above).is_some());
            prop_assert!(m.translate(pid, t.aggressor_below).is_some());
            // And they must actually share a bank with distinct rows —
            // hammerable on demand.
            let pa = m.translate(pid, t.aggressor_above).unwrap();
            let pb = m.translate(pid, t.aggressor_below).unwrap();
            let ca = m.dram().mapping().phys_to_coord(pa);
            let cb = m.dram().mapping().phys_to_coord(pb);
            prop_assert_eq!((ca.channel, ca.rank, ca.bank), (cb.channel, cb.rank, cb.bank));
            prop_assert_ne!(ca.row, cb.row);
        }
    }
}
