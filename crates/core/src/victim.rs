//! The victim: a cipher service whose lookup tables live in one page of
//! (steered) memory.

use ciphers::{present_sbox_image, BlockCipher, Present80, SboxAes, TTableAes, TableImage};
use machine::{MachineError, Pid, SimMachine, VirtAddr};
use memsim::{CpuId, Pfn, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::VictimCipherKind;
use crate::memsource::MachineTableSource;

/// Secret keys of a victim service (ground truth held by the experiment
/// harness, never read by the attack code).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimKeys {
    /// AES-128 key.
    pub aes: [u8; 16],
    /// PRESENT-80 key.
    pub present: [u8; 10],
}

impl VictimKeys {
    /// Derives keys from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC2_E7C0_FFEE);
        VictimKeys {
            aes: rng.gen(),
            present: rng.gen(),
        }
    }
}

/// A running victim process serving encryptions with in-memory tables.
///
/// `start` maps a single page and installs the cipher's table image with the
/// service's *first touch* — which is the exact moment the kernel hands it
/// the head of the CPU's page frame cache (the attack's steered frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimCipherService {
    pid: Pid,
    cpu: CpuId,
    base: VirtAddr,
    kind: VictimCipherKind,
    keys: VictimKeys,
}

impl VictimCipherService {
    /// Spawns the victim on `cpu` and installs its table page.
    ///
    /// # Errors
    ///
    /// Propagates machine errors (OOM on the table page's first touch).
    pub fn start(
        machine: &mut SimMachine,
        cpu: CpuId,
        kind: VictimCipherKind,
        keys: VictimKeys,
    ) -> Result<Self, MachineError> {
        let pid = machine.spawn(cpu);
        let base = machine.mmap(pid, 1)?;
        let image = match kind {
            VictimCipherKind::AesSbox => TableImage::sbox().to_vec(),
            VictimCipherKind::AesTtable => TableImage::te_tables(),
            VictimCipherKind::Present => present_sbox_image().to_vec(),
        };
        machine.write(pid, base, &image)?;
        Ok(VictimCipherService {
            pid,
            cpu,
            base,
            kind,
            keys,
        })
    }

    /// The victim's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The CPU the victim runs on.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// The cipher shape this service runs.
    pub fn kind(&self) -> VictimCipherKind {
        self.kind
    }

    /// Ground-truth keys (experiment oracle — the attack never calls this;
    /// it is used to *verify* recovered keys).
    pub fn keys(&self) -> VictimKeys {
        self.keys
    }

    /// Block size of the service's cipher.
    pub fn block_bytes(&self) -> usize {
        match self.kind {
            VictimCipherKind::AesSbox | VictimCipherKind::AesTtable => 16,
            VictimCipherKind::Present => 8,
        }
    }

    /// Encrypts one block, reading tables through simulated memory.
    ///
    /// # Errors
    ///
    /// On a shadow-translation machine this cannot fail: the table page
    /// stays mapped for the service lifetime. On a machine with
    /// DRAM-resident page tables the victim's *walk* is hammerable, so a
    /// collateral PTE flip surfaces here as the first fault any table read
    /// hit — [`MachineError::Unmapped`] (segfault analog) or a DRAM decode
    /// error. The block contents are garbage in that case and must be
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` differs from [`Self::block_bytes`].
    pub fn encrypt(&self, machine: &mut SimMachine, block: &mut [u8]) -> Result<(), MachineError> {
        assert_eq!(block.len(), self.block_bytes(), "block size mismatch");
        let len = self.kind.image_len();
        let mut src = MachineTableSource::new(machine, self.pid, self.base, len);
        match self.kind {
            VictimCipherKind::AesSbox => {
                SboxAes::new_128(&self.keys.aes, &mut src).encrypt_block(block);
            }
            VictimCipherKind::AesTtable => {
                TTableAes::new_128(&self.keys.aes, &mut src).encrypt_block(block);
            }
            VictimCipherKind::Present => {
                Present80::new(&self.keys.present, &mut src).encrypt_block(block);
            }
        }
        match src.take_fault() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Base virtual address of the table page.
    pub fn table_base(&self) -> VirtAddr {
        self.base
    }

    /// The frame backing the table page (experiment oracle).
    pub fn table_pfn(&self, machine: &SimMachine) -> Option<Pfn> {
        machine
            .translate(self.pid, self.base)
            .map(|pa| Pfn(pa.as_u64() / PAGE_SIZE))
    }

    /// Terminates the service, releasing its page.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn stop(self, machine: &mut SimMachine) -> Result<(), MachineError> {
        machine.exit(self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ciphers::{RamTableSource, ReferenceAes};
    use machine::MachineConfig;

    fn machine() -> SimMachine {
        SimMachine::new(MachineConfig::small(9))
    }

    #[test]
    fn sbox_service_matches_reference_aes() {
        let mut m = machine();
        let keys = VictimKeys::from_seed(1);
        let svc =
            VictimCipherService::start(&mut m, CpuId(1), VictimCipherKind::AesSbox, keys).unwrap();
        let mut block = *b"0123456789abcdef";
        let mut expect = block;
        svc.encrypt(&mut m, &mut block).unwrap();
        ReferenceAes::new_128(&keys.aes).encrypt_block(&mut expect);
        assert_eq!(block, expect);
    }

    #[test]
    fn ttable_service_matches_reference_aes() {
        let mut m = machine();
        let keys = VictimKeys::from_seed(2);
        let svc = VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesTtable, keys)
            .unwrap();
        let mut block = [0xA5u8; 16];
        let mut expect = block;
        svc.encrypt(&mut m, &mut block).unwrap();
        ReferenceAes::new_128(&keys.aes).encrypt_block(&mut expect);
        assert_eq!(block, expect);
    }

    #[test]
    fn present_service_matches_plain_present() {
        let mut m = machine();
        let keys = VictimKeys::from_seed(3);
        let svc =
            VictimCipherService::start(&mut m, CpuId(2), VictimCipherKind::Present, keys).unwrap();
        let mut block = [0x11u8; 8];
        let mut expect = block;
        svc.encrypt(&mut m, &mut block).unwrap();
        Present80::new(
            &keys.present,
            RamTableSource::new(present_sbox_image().to_vec()),
        )
        .encrypt_block(&mut expect);
        assert_eq!(block, expect);
    }

    #[test]
    fn corrupting_the_table_page_corrupts_ciphertexts() {
        let mut m = machine();
        let keys = VictimKeys::from_seed(4);
        let svc =
            VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesSbox, keys).unwrap();
        // Flip one bit of the S-box in DRAM directly (what the hammer does).
        let pa = m.translate(svc.pid(), svc.base).unwrap();
        let byte = m.dram_mut().read_byte(pa + 0x20);
        m.dram_mut().write_byte(pa + 0x20, byte ^ 0x08);

        let mut block = [0u8; 16];
        let mut expect = [0u8; 16];
        svc.encrypt(&mut m, &mut block).unwrap();
        ReferenceAes::new_128(&keys.aes).encrypt_block(&mut expect);
        // With high probability a random-ish block hits the entry at least
        // once across 160 lookups... use several blocks to be sure.
        let mut any_diff = block != expect;
        for i in 1..32u8 {
            let mut b = [i; 16];
            let mut e = [i; 16];
            svc.encrypt(&mut m, &mut b).unwrap();
            ReferenceAes::new_128(&keys.aes).encrypt_block(&mut e);
            any_diff |= b != e;
        }
        assert!(any_diff, "faulted table never influenced a ciphertext");
    }

    #[test]
    fn stop_releases_the_table_frame() {
        let mut m = machine();
        let keys = VictimKeys::from_seed(5);
        let svc =
            VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesSbox, keys).unwrap();
        let pfn = svc.table_pfn(&m).unwrap();
        svc.stop(&mut m).unwrap();
        // The frame is back in cpu0's page frame cache.
        let zone = m.allocator().zone_of(pfn).unwrap();
        assert!(m
            .allocator()
            .zone(zone)
            .unwrap()
            .pcp(CpuId(0))
            .contains(pfn));
    }
}
