//! Background memory noise: other processes churning the allocator.
//!
//! The paper's steering step works when the victim's request hits the page
//! frame cache *before* anyone else does. Experiments use this module to
//! model contention: a noise process performing random small
//! allocate/touch/free bursts on a CPU, consuming and refilling pcp entries.

use machine::{MachineError, Pid, SimMachine, VirtAddr};
use memsim::CpuId;
use rand::rngs::StdRng;
use rand::Rng;

/// A background process that churns memory on one CPU.
#[derive(Debug)]
pub struct NoiseProcess {
    pid: Pid,
    held: Vec<VirtAddr>,
}

impl NoiseProcess {
    /// Spawns a noise process on `cpu`.
    pub fn spawn(machine: &mut SimMachine, cpu: CpuId) -> Self {
        NoiseProcess {
            pid: machine.spawn(cpu),
            held: Vec::new(),
        }
    }

    /// The noise process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Performs one burst: allocates and touches `0..=max_pages` pages,
    /// then frees a random subset of everything held.
    ///
    /// # Errors
    ///
    /// Propagates machine errors (OOM under extreme churn).
    pub fn burst(
        &mut self,
        machine: &mut SimMachine,
        rng: &mut StdRng,
        max_pages: u64,
    ) -> Result<(), MachineError> {
        let take = rng.gen_range(0..=max_pages);
        for _ in 0..take {
            let va = machine.mmap(self.pid, 1)?;
            machine.write(self.pid, va, &[0xA0])?;
            self.held.push(va);
        }
        // Free roughly half of what we hold, newest first (hot frees).
        let releases = rng.gen_range(0..=self.held.len());
        for _ in 0..releases {
            if let Some(va) = self.held.pop() {
                machine.munmap(self.pid, va, 1)?;
            }
        }
        Ok(())
    }

    /// Terminates the noise process, releasing everything.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn stop(self, machine: &mut SimMachine) -> Result<(), MachineError> {
        machine.exit(self.pid)
    }
}
