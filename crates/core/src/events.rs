//! Structured phase events and pluggable observers.
//!
//! Every phase of the attack [`Pipeline`](crate::Pipeline) reports what it
//! did as a [`PhaseEvent`] to the pipeline's [`Observer`]. Observers are
//! pure listeners: they never touch the machine or the attacker RNG, so
//! attaching one cannot change a run's results. The built-in
//! [`TraceCollector`] records the event stream and serializes it via
//! [`campaign::Json`] into the shared `results/trace.json` through a
//! [`campaign::TraceSink`].

use campaign::{Json, TraceSink};
use dram::Nanos;

use crate::attack::AttackOutcome;
use crate::config::{HammerStrategy, VictimCipherKind};
use crate::phase::CollectOutcome;

/// A listener for [`PhaseEvent`]s emitted by a [`Pipeline`](crate::Pipeline).
///
/// Implementations must not have observable side effects on the attack
/// (they receive events by reference and have no machine access), so a
/// traced run and an untraced run produce identical reports.
pub trait Observer {
    /// Called once per emitted event, in emission order.
    fn on_event(&mut self, event: &PhaseEvent);
}

/// An [`Observer`] that discards every event (the default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &PhaseEvent) {}
}

/// One structured record of something a pipeline phase did.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseEvent {
    /// The latency-based mapping probe finished.
    MappingProbed {
        /// Label of the recovered mapping (`None` if ambiguous).
        kind: Option<&'static str>,
        /// Page stride between same-bank neighbouring rows (0 if
        /// unrecovered).
        stride_pages: u64,
        /// Address pairs probed.
        probes: u32,
        /// Simulated time the probe consumed.
        elapsed: Nanos,
    },
    /// The templating sweep began over the attacker's buffer.
    TemplateStarted {
        /// Template buffer size in pages.
        pages: u64,
    },
    /// The templating sweep finished.
    TemplateFinished {
        /// Deduplicated templates found.
        found: usize,
        /// Aggressor pairs hammered by the sweep.
        rows_hammered: u64,
        /// Hammer attempts rejected (buffer fragmentation).
        hammer_failures: u64,
        /// Simulated time the sweep consumed.
        elapsed: Nanos,
    },
    /// Templates were filtered against a victim's table layout.
    TemplatesSelected {
        /// The victim cipher shape the selection targeted.
        kind: VictimCipherKind,
        /// Templates that survived the usability filter.
        usable: usize,
    },
    /// A vulnerable page was released into the CPU's page frame cache.
    FrameReleased {
        /// Page index of the released page within the template buffer.
        page_index: u64,
        /// Frame number released (oracle-observed, reporting only).
        pfn: Option<u64>,
    },
    /// A victim service started and (maybe) received the released frame.
    VictimSteered {
        /// Fault round this steering belongs to (1-based).
        round: u32,
        /// The victim's cipher shape.
        kind: VictimCipherKind,
        /// Whether the victim's table page landed on the released frame
        /// (oracle-checked, reporting only).
        steered: bool,
        /// Frame now backing the victim's table page (oracle).
        victim_pfn: Option<u64>,
    },
    /// The templating sweep (or the re-hammer) switched hammer strategy —
    /// the adaptive driver's reaction to TRR-suppressed flips.
    StrategyEscalated {
        /// The strategy that failed to flip anything.
        from: HammerStrategy,
        /// The strategy the attack continues with.
        to: HammerStrategy,
    },
    /// The retained aggressors were re-hammered around the steered frame.
    HammerFinished {
        /// Fault round (1-based).
        round: u32,
        /// Rounds hammered (pairs for the double-sided strategy).
        pairs: u64,
        /// Distinct aggressor rows activated per round (2 = double-sided).
        rows: u32,
        /// `false` if the hammer primitive rejected the aggressors.
        ok: bool,
    },
    /// Faulty-ciphertext collection for one round ended.
    CiphertextsCollected {
        /// Fault round (1-based).
        round: u32,
        /// Ciphertexts collected this round.
        collected: u64,
        /// How collection ended.
        outcome: CollectOutcome,
    },
    /// One round's statistics were fed to the key-recovery analysis.
    RoundAnalyzed {
        /// Fault round (1-based).
        round: u32,
        /// Whether the full key is now recovered.
        key_recovered: bool,
    },
    /// The pipeline finished and produced its report.
    PipelineFinished {
        /// Why the run ended.
        outcome: AttackOutcome,
        /// Total fault rounds attempted.
        fault_rounds: u32,
        /// Simulated time the whole run consumed.
        elapsed: Nanos,
    },
}

impl PhaseEvent {
    /// The event's kebab-case discriminator (the `"event"` field in JSON).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PhaseEvent::MappingProbed { .. } => "mapping-probed",
            PhaseEvent::TemplateStarted { .. } => "template-started",
            PhaseEvent::TemplateFinished { .. } => "template-finished",
            PhaseEvent::TemplatesSelected { .. } => "templates-selected",
            PhaseEvent::FrameReleased { .. } => "frame-released",
            PhaseEvent::VictimSteered { .. } => "victim-steered",
            PhaseEvent::StrategyEscalated { .. } => "strategy-escalated",
            PhaseEvent::HammerFinished { .. } => "hammer-finished",
            PhaseEvent::CiphertextsCollected { .. } => "ciphertexts-collected",
            PhaseEvent::RoundAnalyzed { .. } => "round-analyzed",
            PhaseEvent::PipelineFinished { .. } => "pipeline-finished",
        }
    }

    /// The event as a `campaign` JSON object (an `"event"` discriminator
    /// plus the variant's fields).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("event", self.name());
        match *self {
            PhaseEvent::MappingProbed {
                kind,
                stride_pages,
                probes,
                elapsed,
            } => {
                obj.set(
                    "kind",
                    kind.map_or(Json::Null, |label| Json::Str(label.to_owned())),
                );
                obj.set("stride_pages", stride_pages);
                obj.set("probes", probes);
                obj.set("elapsed_ns", elapsed);
            }
            PhaseEvent::TemplateStarted { pages } => obj.set("pages", pages),
            PhaseEvent::TemplateFinished {
                found,
                rows_hammered,
                hammer_failures,
                elapsed,
            } => {
                obj.set("found", found);
                obj.set("rows_hammered", rows_hammered);
                obj.set("hammer_failures", hammer_failures);
                obj.set("elapsed_ns", elapsed);
            }
            PhaseEvent::TemplatesSelected { kind, usable } => {
                obj.set("kind", kind.label());
                obj.set("usable", usable);
            }
            PhaseEvent::FrameReleased { page_index, pfn } => {
                obj.set("page_index", page_index);
                obj.set("pfn", opt_u64(pfn));
            }
            PhaseEvent::VictimSteered {
                round,
                kind,
                steered,
                victim_pfn,
            } => {
                obj.set("round", round);
                obj.set("kind", kind.label());
                obj.set("steered", steered);
                obj.set("victim_pfn", opt_u64(victim_pfn));
            }
            PhaseEvent::StrategyEscalated { from, to } => {
                obj.set("from", from.label());
                obj.set("to", to.label());
                obj.set("rows", u64::from(to.rows()));
            }
            PhaseEvent::HammerFinished {
                round,
                pairs,
                rows,
                ok,
            } => {
                obj.set("round", round);
                obj.set("pairs", pairs);
                obj.set("rows", rows);
                obj.set("ok", ok);
            }
            PhaseEvent::CiphertextsCollected {
                round,
                collected,
                outcome,
            } => {
                obj.set("round", round);
                obj.set("collected", collected);
                obj.set("outcome", outcome.label());
            }
            PhaseEvent::RoundAnalyzed {
                round,
                key_recovered,
            } => {
                obj.set("round", round);
                obj.set("key_recovered", key_recovered);
            }
            PhaseEvent::PipelineFinished {
                outcome,
                fault_rounds,
                elapsed,
            } => {
                obj.set("outcome", outcome.label());
                obj.set("fault_rounds", fault_rounds);
                obj.set("elapsed_ns", elapsed);
            }
        }
        obj
    }
}

fn opt_u64(value: Option<u64>) -> Json {
    value.map_or(Json::Null, Json::UInt)
}

/// An [`Observer`] that records every event, for inspection or persistence
/// as a `results/trace.json` record.
///
/// # Examples
///
/// ```no_run
/// use explframe_core::{ExplFrame, ExplFrameConfig, TraceCollector};
///
/// let mut trace = TraceCollector::new();
/// let report = ExplFrame::new(ExplFrameConfig::small_demo(1))
///     .run_traced(&mut trace)?;
/// trace.to_sink("demo").write(); // merges into results/trace.json
/// # let _ = report;
/// # Ok::<(), explframe_core::AttackError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceCollector {
    events: Vec<PhaseEvent>,
}

impl TraceCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[PhaseEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all recorded events (reuse one collector across runs).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The whole trace as a JSON array of event objects.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(self.events.iter().map(PhaseEvent::to_json).collect())
    }

    /// Packages the trace as a named [`TraceSink`] ready to
    /// [`write`](TraceSink::write) into `results/trace.json`.
    #[must_use]
    pub fn to_sink(&self, name: &str) -> TraceSink {
        let mut sink = TraceSink::new(name);
        for event in &self.events {
            sink.push(event.to_json());
        }
        sink
    }
}

impl Observer for TraceCollector {
    fn on_event(&mut self, event: &PhaseEvent) {
        self.events.push(event.clone());
    }
}

/// An [`Observer`] that feeds phase events into the process-global [`perf`]
/// registry: every event bumps its own named counter, and the events that
/// carry work magnitudes (rows hammered, hammer pairs, ciphertexts) add
/// them under `event.*` keys. Combined with the wall-clock scopes the
/// [`Pipeline`](crate::Pipeline) opens around each phase, a single
/// [`perf::snapshot`] then answers "where did the time go, and how much
/// work was done there" per phase.
///
/// Like every observer it is a pure listener — with the registry disabled
/// (the default) it does nothing at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfObserver;

impl Observer for PerfObserver {
    fn on_event(&mut self, event: &PhaseEvent) {
        if !perf::is_enabled() {
            return;
        }
        perf::count(event.name(), 1);
        match *event {
            PhaseEvent::TemplateFinished {
                found,
                rows_hammered,
                ..
            } => {
                perf::count("event.templates_found", found as u64);
                perf::count("event.rows_hammered", rows_hammered);
            }
            PhaseEvent::HammerFinished { pairs, .. } => {
                perf::count("event.hammer_pairs", pairs);
            }
            PhaseEvent::CiphertextsCollected { collected, .. } => {
                perf::count("event.ciphertexts", collected);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_discriminator_and_fields() {
        let event = PhaseEvent::VictimSteered {
            round: 3,
            kind: VictimCipherKind::Present,
            steered: true,
            victim_pfn: Some(77),
        };
        let json = event.to_json();
        assert_eq!(
            json.get("event").and_then(Json::as_str),
            Some("victim-steered")
        );
        assert_eq!(json.get("round").and_then(Json::as_u64), Some(3));
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("present"));
        assert_eq!(json.get("victim_pfn").and_then(Json::as_u64), Some(77));

        let none = PhaseEvent::FrameReleased {
            page_index: 9,
            pfn: None,
        };
        assert_eq!(none.to_json().get("pfn"), Some(&Json::Null));
    }

    #[test]
    fn mapping_probe_event_serializes() {
        let event = PhaseEvent::MappingProbed {
            kind: Some("xor"),
            stride_pages: 128,
            probes: 6,
            elapsed: 42,
        };
        let json = event.to_json();
        assert_eq!(
            json.get("event").and_then(Json::as_str),
            Some("mapping-probed")
        );
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("xor"));
        assert_eq!(json.get("stride_pages").and_then(Json::as_u64), Some(128));
        assert_eq!(json.get("probes").and_then(Json::as_u64), Some(6));
        let ambiguous = PhaseEvent::MappingProbed {
            kind: None,
            stride_pages: 0,
            probes: 6,
            elapsed: 1,
        };
        assert_eq!(ambiguous.to_json().get("kind"), Some(&Json::Null));
    }

    #[test]
    fn collector_records_in_order_and_sinks() {
        let mut collector = TraceCollector::new();
        assert!(collector.is_empty());
        collector.on_event(&PhaseEvent::TemplateStarted { pages: 4 });
        collector.on_event(&PhaseEvent::PipelineFinished {
            outcome: AttackOutcome::OutOfTemplates,
            fault_rounds: 2,
            elapsed: 10,
        });
        assert_eq!(collector.len(), 2);
        assert_eq!(collector.events()[0].name(), "template-started");
        let sink = collector.to_sink("unit");
        assert_eq!(sink.len(), 2);
        let Json::Arr(items) = collector.to_json() else {
            panic!("expected array");
        };
        assert_eq!(
            items[1].get("outcome").and_then(Json::as_str),
            Some("out-of-templates")
        );
        collector.clear();
        assert!(collector.is_empty());
    }
}
