//! PTE-flip escalation: Rowhammer against the victim's *page tables*
//! instead of its data (the `exp_t15_ptflip` campaign family).
//!
//! The classic ExplFrame composition steers a templated frame under the
//! victim's **data** (an AES T-table) and reads faulty ciphertexts. This
//! module escalates the same primitive one level down the memory hierarchy:
//! with DRAM-resident page tables on
//! ([`machine::MachineConfig::with_dram_page_tables`]), page-table frames
//! are ordinary allocator frames whose PTE bytes sit in hammerable DRAM
//! rows, so the attacker can steer a *templated* frame into becoming one of
//! the victim's page tables and then flip a frame-number bit inside a live
//! PTE. After the flip (and a TLB shootdown), the victim's virtual page is
//! silently remapped to a frame the kernel never granted it — reads and
//! writes through an unchanged virtual address land in attacker-chosen
//! physical memory. That is the privilege-escalation analog of Seaborn's
//! PTE attack, built entirely from this repo's existing massaging
//! primitives (LIFO page-frame-cache steering, templating, double-sided
//! hammering).
//!
//! Two compositions are provided:
//!
//! * **Leaf-table steering** ([`PtFlipConfig`] default): the victim's first
//!   touch in a fresh region demand-allocates a *leaf* table — which pops
//!   the attacker's just-released templated frame — then its data frame,
//!   which pops the attacker's second staged frame `D`. The attacker picks
//!   `D` so the weak cell's bit position holds the chargeable value and
//!   keeps the alias frame `D' = D ^ (1 << bit)` mapped with a sentinel.
//!   One flip later the victim's PTE decodes to `D'`: the victim's writes
//!   are exfiltrated through the attacker's own mapping.
//! * **Huge-page-assisted root steering** (`with_huge_victim(true)`):
//!   `spawn` itself consumes the page-frame-cache head for the new
//!   process's *root* table, so releasing the templated frame immediately
//!   before the victim spawns steers its root table. The victim maps a
//!   2 MiB huge region whose single root-level PTE sits in the templated
//!   frame; an anti-cell flip in the low frame bits shifts the victim's
//!   whole 2 MiB view by a page-granular offset — its own data vanishes
//!   from under its virtual addresses.
//!
//! Everything is a pure function of the seed: no RNG is drawn, so campaign
//! results are byte-identical for any `--threads`.

use dram::Nanos;
use machine::{MachineConfig, Pid, SimMachine, VirtAddr};
use memsim::{CpuId, FrameKind, PAGE_SIZE};

use crate::error::AttackError;
use crate::template::{template_scan, FlipTemplate};

/// Pages per 2 MiB huge mapping (must agree with
/// [`machine::SimMachine::mmap_huge`]'s 512-page granule).
const HUGE_PAGES: u64 = 512;
/// PTE slots per table frame (4 KiB / 8-byte entries).
const SLOTS_PER_TABLE: u64 = PAGE_SIZE / 8;

/// Parameters of one PTE-flip escalation trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtFlipConfig {
    /// Machine + weak-cell seed (the only source of variation).
    pub seed: u64,
    /// Attacker template-buffer size in pages.
    pub template_pages: u64,
    /// Activation pairs per hammer burst (templating and the final flip).
    pub hammer_pairs: u64,
    /// `false`: leaf-table steering with an attacker alias frame.
    /// `true`: huge-page root-table steering via spawn-order massaging.
    pub huge_victim: bool,
}

impl PtFlipConfig {
    /// Demo scale: 256 MiB flippy machine, 8 MiB template buffer.
    #[must_use]
    pub fn small_demo(seed: u64) -> Self {
        PtFlipConfig {
            seed,
            template_pages: 2048,
            hammer_pairs: 400_000,
            huge_victim: false,
        }
    }

    /// Returns a copy targeting the huge-page root-steering composition.
    #[must_use]
    pub fn with_huge_victim(mut self, on: bool) -> Self {
        self.huge_victim = on;
        self
    }

    /// Returns a copy with a different template-buffer size.
    #[must_use]
    pub fn with_template_pages(mut self, pages: u64) -> Self {
        self.template_pages = pages;
        self
    }
}

/// What one escalation trial achieved, in escalating order of severity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PtFlipOutcome {
    /// Templating produced a flip usable as a PTE frame-bit corruption
    /// (right bit range, right polarity, alias frame available).
    pub template_found: bool,
    /// The templated frame was verifiably steered into the victim's page
    /// table (leaf or root, per composition), with the weak cell sitting
    /// under the live PTE slot.
    pub steered_table: bool,
    /// After hammering + shootdown, the hardware walk
    /// ([`machine::SimMachine::translate_walk`]) diverges from the kernel's
    /// shadow pagemap: the victim page is remapped.
    pub remapped: bool,
    /// The remap was demonstrated end to end through ordinary accesses:
    /// leaf composition — the victim's post-flip write surfaced in the
    /// attacker's alias mapping; huge composition — the victim's post-flip
    /// read no longer returns the bytes it wrote.
    pub hijacked: bool,
    /// Total activation pairs spent (templating + escalation burst) — the
    /// cost-per-key denominator comparable with the cipher campaigns.
    pub hammer_pairs: u64,
    /// Simulated time consumed by the whole trial.
    pub elapsed: Nanos,
}

/// A selected escalation target: which template to re-hammer and how the
/// PTE under it must be staged.
struct EscalationPlan {
    template: FlipTemplate,
    /// PTE slot index (within one table frame) the weak cell lands in.
    slot: u64,
    /// Leaf composition only: attacker page released to become the
    /// victim's data frame `D`.
    d_va: Option<VirtAddr>,
    /// Leaf composition only: attacker page kept mapped as the alias `D'`.
    dprime_va: Option<VirtAddr>,
}

/// Runs one deterministic PTE-flip escalation trial.
///
/// # Errors
///
/// Propagates machine failures ([`AttackError::Machine`]). A trial that
/// simply fails to escalate (no usable template, steering lost the race,
/// the flip did not land) is *not* an error — it returns an outcome with
/// the corresponding flags false, so campaigns can report rates.
pub fn pte_flip_escalation(config: &PtFlipConfig) -> Result<PtFlipOutcome, AttackError> {
    let mcfg = MachineConfig::small(config.seed).with_dram_page_tables(true);
    let mut m = SimMachine::new(mcfg);
    let attacker = m.spawn(CpuId(0));
    let base = m.mmap(attacker, config.template_pages)?;
    let scan = template_scan(
        &mut m,
        attacker,
        base,
        config.template_pages,
        config.hammer_pairs,
        2,
    )?;

    let mut outcome = PtFlipOutcome::default();
    let plan = if config.huge_victim {
        select_root_target(&mut m, attacker, &scan.templates)
    } else {
        select_leaf_target(
            &mut m,
            attacker,
            base,
            config.template_pages,
            &scan.templates,
        )
    };
    let Some(plan) = plan else {
        outcome.hammer_pairs = m.stats().hammer_pairs;
        outcome.elapsed = m.now();
        return Ok(outcome);
    };
    outcome.template_found = true;

    let tmpl_page = plan.template.page_va;
    // On a walk machine the attacker's own templating can detach this page
    // (self-hazard); report a non-escalation instead of panicking.
    let Some(tmpl_pa) = m.translate(attacker, tmpl_page) else {
        outcome.hammer_pairs = m.stats().hammer_pairs;
        outcome.elapsed = m.now();
        return Ok(outcome);
    };
    let tmpl_frame = tmpl_pa.as_u64() / PAGE_SIZE;

    let (victim, target) = if config.huge_victim {
        // Root steering: the released templated frame sits at the pcp head
        // when the victim spawns, so the kernel's root-table allocation
        // consumes it.
        m.munmap(attacker, tmpl_page, 1)?;
        let victim = m.spawn(CpuId(0));
        // First touch of chunk `slot` writes the huge root PTE into slot
        // `slot` of the (templated) root table.
        let vbuf = m.mmap_huge(victim, plan.slot + 1)?;
        let target = vbuf + plan.slot * HUGE_PAGES * PAGE_SIZE;
        m.write(victim, target, b"victim secret v1")?;
        (victim, target)
    } else {
        // Leaf steering: spawn the victim *before* staging so its root
        // table does not eat the staged frames, plant the sentinel in the
        // alias frame, then release data-candidate first and templated
        // frame last — LIFO order makes the leaf-table allocation (first
        // pop of the victim's fault) take the templated frame and the data
        // allocation (second pop) take `D`.
        let victim = m.spawn(CpuId(0));
        let d_va = plan.d_va.expect("leaf plan carries D");
        let dprime_va = plan.dprime_va.expect("leaf plan carries D'");
        m.fill(attacker, dprime_va, PAGE_SIZE, 0xA5)?;
        m.munmap(attacker, d_va, 1)?;
        m.munmap(attacker, tmpl_page, 1)?;
        let vbuf = m.mmap(victim, SLOTS_PER_TABLE)?;
        // Touch the page whose leaf index equals the weak slot, so the PTE
        // the flip corrupts is exactly the one mapping the victim's data.
        let page = (plan.slot + SLOTS_PER_TABLE - vbuf.vpn() % SLOTS_PER_TABLE) % SLOTS_PER_TABLE;
        let target = vbuf + page * PAGE_SIZE;
        m.write(victim, target, b"victim secret v1")?;
        (victim, target)
    };

    // Verify the steering: the live PTE mapping `target` must sit in the
    // templated frame, at the slot the weak cell covers.
    outcome.steered_table = m.pte_phys(victim, target).is_some_and(|slot_pa| {
        slot_pa.as_u64() / PAGE_SIZE == tmpl_frame
            && slot_pa.as_u64() % PAGE_SIZE == plan.slot * 8
            && m.allocator().frame_kind(memsim::Pfn(tmpl_frame)) == FrameKind::PageTable
    });

    // Hammer the templated cell through the attacker's still-mapped
    // aggressor rows, then model the TLB shootdown that forces the victim
    // back onto the (corrupted) walk.
    let shadow_before = m.translate(victim, target);
    let _ = m.hammer_pair_virt(
        attacker,
        plan.template.aggressor_above,
        plan.template.aggressor_below,
        config.hammer_pairs,
    )?;
    m.flush_tlb();

    let walk_after = m.translate_walk(victim, target)?;
    outcome.remapped = walk_after != shadow_before;

    if outcome.remapped {
        if config.huge_victim {
            // The victim's own bytes vanished from under its address. A
            // collateral flip may even push the decoded block off the
            // device — the victim segfaults, which is equally a hijack.
            let mut back = [0u8; 16];
            outcome.hijacked = match m.read(victim, target, &mut back) {
                Ok(()) => &back != b"victim secret v1",
                Err(machine::MachineError::Unmapped { .. }) => true,
                Err(e) => return Err(e.into()),
            };
        } else {
            // The victim writes fresh data; the attacker reads it out of
            // the alias frame its own mapping still covers. Collateral
            // flips in neighbouring PTE bits can break the clean redirect
            // (segfault, or a demand-fault repair onto a fresh frame) —
            // that's a remap without a controlled leak, not an error.
            let redirect = m.write(victim, target, b"victim secret v2");
            match redirect {
                Ok(()) => {
                    let mut leak = [0u8; 16];
                    let dprime_va = plan.dprime_va.expect("leaf plan");
                    outcome.hijacked = match m.read(attacker, dprime_va, &mut leak) {
                        Ok(()) => &leak == b"victim secret v2",
                        Err(machine::MachineError::Unmapped { .. }) => false,
                        Err(e) => return Err(e.into()),
                    };
                }
                Err(machine::MachineError::Unmapped { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    outcome.hammer_pairs = m.stats().hammer_pairs;
    outcome.elapsed = m.now();
    Ok(outcome)
}

/// Bit position of template `t` within its 64-bit PTE slot.
fn pte_bitpos(t: &FlipTemplate) -> u32 {
    u32::from(t.page_offset % 8) * 8 + u32::from(t.bit)
}

/// `true` if the hardware walk for `va` still agrees with the shadow
/// pagemap. Templating on a DRAM-page-tables machine hammers rows that may
/// hold the attacker's *own* leaf tables, so collateral flips can detach
/// buffer pages from under their virtual addresses; a plan must only rely
/// on pages that still walk cleanly.
fn walk_clean(m: &mut SimMachine, pid: Pid, va: VirtAddr) -> bool {
    m.translate_walk(pid, va)
        .is_ok_and(|walked| walked.is_some() && walked == m.translate(pid, va))
}

/// Picks a template + alias pair for the leaf composition: the weak cell
/// must land on a frame-number bit, some buffer frame `D` must hold the
/// chargeable value at that bit, and its alias `D' = D ^ (1 << bit)` must
/// also be an attacker-mapped buffer frame (excluding the pages the attack
/// needs intact: the templated page itself and the aggressor rows).
fn select_leaf_target(
    m: &mut SimMachine,
    attacker: Pid,
    base: VirtAddr,
    pages: u64,
    templates: &[FlipTemplate],
) -> Option<EscalationPlan> {
    let capacity = m.dram().capacity_bytes();
    // Physical page base → (buffer VA, DRAM row key), shadow view.
    let mut frames = std::collections::BTreeMap::new();
    for i in 0..pages {
        let va = base + i * PAGE_SIZE;
        if let Some(pa) = m.translate(attacker, va) {
            let c = m.dram().mapping().phys_to_coord(pa);
            frames.insert(pa.as_u64(), (va, (c.channel, c.rank, c.bank, c.row)));
        }
    }
    for t in templates {
        if t.reproducibility < 0.99 {
            continue;
        }
        let bitpos = pte_bitpos(t);
        if bitpos < PAGE_SIZE.trailing_zeros() || (1u64 << bitpos) >= capacity {
            continue; // flag/offset bits or beyond the device
        }
        let delta = 1u64 << bitpos;
        let Some(tmpl_pa) = m.translate(attacker, t.page_va).map(|p| p.as_u64()) else {
            continue;
        };
        let tc = m
            .dram()
            .mapping()
            .phys_to_coord(dram::PhysAddr::new(tmpl_pa));
        let victim_row = (tc.channel, tc.rank, tc.bank, tc.row);
        let excluded = [t.page_va, t.aggressor_above, t.aggressor_below];
        // The plan leans on the templated page and both aggressors walking
        // cleanly (they get unmapped/hammered through real translations).
        if excluded.iter().any(|&va| !walk_clean(m, attacker, va)) {
            continue;
        }
        let candidates: Vec<(VirtAddr, VirtAddr)> = frames
            .iter()
            .filter_map(|(&pa, &(va, row))| {
                if excluded.contains(&va) {
                    return None;
                }
                // D must hold the chargeable value at the weak bit...
                if ((pa & delta) != 0) != t.one_to_zero {
                    return None;
                }
                // ...its alias must be another attacker page (not the
                // templated frame, not an aggressor)...
                let &(alias_va, alias_row) = frames.get(&(pa ^ delta))?;
                if excluded.contains(&alias_va) || alias_va == va {
                    return None;
                }
                // ...and neither may share the victim DRAM row under
                // hammer, or collateral flips corrupt the demonstration.
                (row != victim_row && alias_row != victim_row).then_some((va, alias_va))
            })
            .collect();
        for (d_va, dprime_va) in candidates {
            if walk_clean(m, attacker, d_va) && walk_clean(m, attacker, dprime_va) {
                return Some(EscalationPlan {
                    template: *t,
                    slot: u64::from(t.page_offset) / 8,
                    d_va: Some(d_va),
                    dprime_va: Some(dprime_va),
                });
            }
        }
    }
    None
}

/// Picks a template for the huge/root composition: an anti cell (0 → 1) on
/// a frame bit *below* the 2 MiB block alignment — those bits are
/// guaranteed zero in any huge PTE, so the flip deterministically shifts
/// the decoded block — in a slot the victim's huge region can reach.
fn select_root_target(
    m: &mut SimMachine,
    attacker: Pid,
    templates: &[FlipTemplate],
) -> Option<EscalationPlan> {
    let huge_bits = (HUGE_PAGES * PAGE_SIZE).trailing_zeros(); // 21
    for t in templates {
        let bitpos = pte_bitpos(t);
        let slot = u64::from(t.page_offset) / 8;
        let eligible = t.reproducibility >= 0.99
            && !t.one_to_zero
            && bitpos >= PAGE_SIZE.trailing_zeros()
            && bitpos < huge_bits
            // The victim must be able to reserve slot+1 chunks plus the
            // guard page inside the 1 GiB walk window.
            && slot < SLOTS_PER_TABLE - 1;
        if eligible
            && [t.page_va, t.aggressor_above, t.aggressor_below]
                .iter()
                .all(|&va| walk_clean(m, attacker, va))
        {
            return Some(EscalationPlan {
                template: *t,
                slot,
                d_va: None,
                dprime_va: None,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_escalation_recovers_a_remap_end_to_end() {
        // Search a few seeds: any given module may lack a usable weak cell,
        // but the composition must land on flippy ones.
        let mut landed = 0;
        for seed in 1..=4 {
            let out = pte_flip_escalation(&PtFlipConfig::small_demo(seed)).unwrap();
            if out.template_found {
                assert!(out.steered_table, "seed {seed}: steering must be exact");
            }
            if out.hijacked {
                assert!(out.remapped, "seed {seed}: hijack implies remap");
                landed += 1;
            }
            assert!(out.hammer_pairs > 0);
        }
        assert!(landed > 0, "no seed in 1..=4 produced a full escalation");
    }

    #[test]
    fn huge_escalation_shifts_the_victim_view() {
        let mut landed = 0;
        for seed in 1..=6 {
            let cfg = PtFlipConfig::small_demo(seed).with_huge_victim(true);
            let out = pte_flip_escalation(&cfg).unwrap();
            if out.template_found && out.remapped {
                assert!(
                    out.steered_table,
                    "seed {seed}: root steering must be exact"
                );
                assert!(
                    out.hijacked,
                    "seed {seed}: shifted view must drop the secret"
                );
                landed += 1;
            }
        }
        assert!(landed > 0, "no seed in 1..=6 landed a root-PTE flip");
    }

    #[test]
    fn trials_are_deterministic() {
        let cfg = PtFlipConfig::small_demo(3);
        let a = pte_flip_escalation(&cfg).unwrap();
        let b = pte_flip_escalation(&cfg).unwrap();
        assert_eq!(a, b);
    }
}
