//! First-class attack phases and their typed artifacts.
//!
//! The paper's attack is five phases — template → release → steer → hammer
//! → analyze (§V–§VI) — and this module makes each one a value: a type
//! implementing [`Phase`], consuming one typed artifact and producing the
//! next ([`TemplatePool`] → [`ReleasedFrame`] → [`SteeredVictim`] →
//! [`FaultedCiphertexts`] → [`RecoveredKey`]). Phases run against a
//! [`PhaseCtx`] carrying the machine, the attacker RNG, the run's
//! [`Counters`], and the [`Observer`](crate::Observer) receiving
//! [`PhaseEvent`](crate::PhaseEvent)s.
//!
//! Compositions are built with [`Pipeline`](crate::Pipeline), which strings
//! phases together while preserving their shared state;
//! [`ExplFrame::run`](crate::ExplFrame::run) is itself one such
//! composition.

use std::collections::BTreeSet;

use ciphers::{
    present_sbox_image, BlockCipher, Present80, RamTableSource, TableImage, PRESENT_SBOX,
};
use dram::{MappingKind, Nanos};
use fault::{PfaCollector, PresentPfa, TTablePfa, TableFault, TeFaultClass};
use machine::{MachineError, Pid, SimMachine, VirtAddr};
use memsim::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::{ExplFrameConfig, HammerStrategy, VictimCipherKind};
use crate::error::AttackError;
use crate::events::{Observer, PhaseEvent};
use crate::template::{strategy_aggressors, template_scan_with, FlipTemplate, TemplateScan};
use crate::victim::{VictimCipherService, VictimKeys};

/// Ciphertext budget of the ECC-aware pre-collection probe: enough
/// encryptions that a live table fault almost surely touches the faulted
/// word (surfacing in the corrected/detected telemetry), yet three orders
/// of magnitude below what the missing-value statistics would burn to
/// prove the same round hopeless.
const ECC_PROBE_CIPHERTEXTS: u64 = 8;

/// Page-table frames a walk-mode victim consumes from the frame-cache head
/// *before* its table page's first touch: the spawn's root table and the
/// first VMA's leaf table.
const WALK_TABLE_POPS: u64 = 2;

/// Whether a machine error is a walk-mode casualty: the segfault analog
/// ([`MachineError::Unmapped`]) or a DRAM decode error, both reachable only
/// when page tables live in DRAM and a collateral flip corrupted a live
/// translation. Shadow-mode runs can never hit these mid-phase, so the
/// graceful-degradation paths below are dead code there and the pinned
/// shadow goldens are unaffected.
fn walk_casualty(e: &MachineError) -> bool {
    matches!(e, MachineError::Unmapped { .. } | MachineError::Dram(_))
}

/// Everything a phase may touch while running.
///
/// The context is the *only* channel between a phase and the world: the
/// simulated machine, the attacker's seeded RNG, the run's accumulating
/// [`Counters`], and the event [`Observer`]. Keeping it explicit is what
/// lets phases compose in any order without hidden coupling.
pub struct PhaseCtx<'a> {
    /// The attack configuration.
    pub config: &'a ExplFrameConfig,
    /// The machine under attack.
    pub machine: &'a mut SimMachine,
    /// The attacker's seeded RNG (plaintext queries, known pairs).
    pub rng: &'a mut StdRng,
    /// Receives [`PhaseEvent`]s.
    pub observer: &'a mut dyn Observer,
    /// The run's accumulating tallies.
    pub counters: &'a mut Counters,
    /// Ground-truth victim keys (oracle — used to *start* victims and to
    /// verify recovered keys, never read by analysis).
    pub keys: VictimKeys,
}

impl PhaseCtx<'_> {
    /// Emits one event to the observer.
    pub fn emit(&mut self, event: PhaseEvent) {
        self.observer.on_event(&event);
    }
}

/// One attack phase: consumes a typed artifact, produces the next.
///
/// Stateless phases ([`TemplatePhase`], [`ReleasePhase`], [`SteerPhase`],
/// [`HammerPhase`], [`CollectPhase`]) are unit-like and constructed per
/// call; [`AnalyzePhase`] carries cross-round recovery state (the T-table
/// PFA accumulator) and lives for the whole pipeline.
pub trait Phase {
    /// Artifact the phase consumes.
    type In;
    /// Artifact the phase produces.
    type Out;

    /// The phase's name (for diagnostics).
    fn name(&self) -> &'static str;

    /// Runs the phase.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] for machine-level failures; attack-level
    /// failures are encoded in the output artifact.
    fn run(&mut self, ctx: &mut PhaseCtx<'_>, input: Self::In) -> Result<Self::Out, AttackError>;
}

/// Tallies accumulated across a pipeline run — the counted portion of the
/// final [`AttackReport`](crate::AttackReport).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Counters {
    /// Raw templates found by the sweep.
    pub templates_found: usize,
    /// Templates usable against the most recently selected victim layout.
    pub usable_templates: usize,
    /// Fault rounds in which the victim verifiably received the released
    /// frame (oracle-checked).
    pub steering_successes: u32,
    /// Fault rounds attempted (each victim arrival is one round).
    pub fault_rounds: u32,
    /// Total ciphertexts collected across rounds.
    pub ciphertexts_collected: u64,
    /// Recovered AES-128 key, if any analysis completed.
    pub recovered_aes_key: Option<[u8; 16]>,
    /// Recovered PRESENT-80 key, if any analysis completed.
    pub recovered_present_key: Option<[u8; 10]>,
    /// Times the run escalated its hammer strategy (adaptive driver).
    pub strategy_escalations: u32,
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// Output of the mapping probe: the bank-mapping function recovered from
/// row-conflict latencies, or `None` when the measurements were ambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredMapping {
    /// The recovered mapping kind (`None` if no single candidate survived
    /// every measurement).
    pub kind: Option<MappingKind>,
    /// Page stride between same-bank neighbouring rows under the recovered
    /// mapping — the stride the many-sided decoy placement needs (0 when
    /// unrecovered).
    pub stride_pages: u64,
    /// Address pairs probed.
    pub probes: u32,
    /// Simulated time the probe consumed.
    pub elapsed: Nanos,
}

/// Output of the templating phase: the attacker process, its still-mapped
/// buffer, and the raw scan results.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplatePool {
    /// The attacker process that owns the template buffer.
    pub attacker: Pid,
    /// Base of the template buffer in the attacker's address space.
    pub buffer: VirtAddr,
    /// The raw templating sweep results.
    pub scan: TemplateScan,
}

impl TemplatePool {
    /// Templates usable against `kind`'s table layout, best-reproducing
    /// first: one per vulnerable page, restricted to pages where exactly one
    /// templated flip fires against the victim image (see
    /// [`select_attack_pages`]).
    #[must_use]
    pub fn usable(&self, kind: VictimCipherKind) -> Vec<FlipTemplate> {
        let mut usable = select_attack_pages(&self.scan.templates, kind);
        usable.sort_by(|a, b| {
            b.reproducibility
                .partial_cmp(&a.reproducibility)
                .expect("reproducibility is never NaN")
        });
        usable
    }
}

/// A vulnerable frame released into the CPU's page frame cache, awaiting a
/// victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleasedFrame {
    /// The template whose page was released (aggressors stay mapped).
    pub template: FlipTemplate,
    /// The released frame number (oracle-observed, reporting only).
    pub pfn: Option<u64>,
}

/// A running victim whose table page the pipeline (maybe) steered onto the
/// released frame, plus one pre-fault known plaintext/ciphertext pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SteeredVictim {
    /// The victim service (copyable handle; stop it via
    /// [`Pipeline::stop_victim`](crate::Pipeline::stop_victim)).
    pub victim: VictimCipherService,
    /// The template targeting this victim's frame.
    pub template: FlipTemplate,
    /// Whether the victim's table page landed on the released frame
    /// (oracle-checked, reporting only).
    pub steered: bool,
    /// Known plaintext collected before the fault (PRESENT master-key
    /// recovery needs one clean pair).
    pub known_plain: Vec<u8>,
    /// The corresponding pre-fault ciphertext.
    pub known_cipher: Vec<u8>,
}

/// How a collection round ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectOutcome {
    /// Every needed position converged to a single missing value.
    Converged,
    /// A needed position saw every value: no last-round fault landed.
    NoFault,
    /// The ciphertext budget ran out before convergence.
    Exhausted,
    /// Collection was skipped (template not analytically usable — e.g. a
    /// T-table flip outside the S-lane).
    Skipped,
    /// The ECC-aware probe saw the DIMM silently correcting the fault:
    /// every ciphertext this round would be clean, so the round was
    /// discarded after a handful of probe queries instead of feeding
    /// corrected ciphertexts to the solvers.
    Corrected,
    /// The victim segfaulted mid-collection (walk mode only): a collateral
    /// flip landed in one of its DRAM-resident page-table frames instead of
    /// the cipher table, detaching the table page or sending the walk off
    /// the device. The round yields no statistics — the analog of a
    /// real-world victim process crashing under the attack.
    VictimCrashed,
}

impl CollectOutcome {
    /// Kebab-case label (for traces).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CollectOutcome::Converged => "converged",
            CollectOutcome::NoFault => "no-fault",
            CollectOutcome::Exhausted => "exhausted",
            CollectOutcome::Skipped => "skipped",
            CollectOutcome::Corrected => "ecc-corrected",
            CollectOutcome::VictimCrashed => "victim-crashed",
        }
    }
}

/// Faulty-ciphertext statistics collected from one steered victim.
#[derive(Debug)]
pub struct FaultedCiphertexts {
    /// The victim the ciphertexts came from.
    pub victim: SteeredVictim,
    /// How collection ended (analysis only runs on
    /// [`CollectOutcome::Converged`]).
    pub outcome: CollectOutcome,
    /// Ciphertexts collected this round.
    pub collected: u64,
    pub(crate) data: CollectorState,
}

/// The cipher-specific collector carrying the round's statistics. The
/// collectors hold kilobytes of per-position counters, so they are boxed
/// to keep the artifact small when moved between phases.
#[derive(Debug)]
pub(crate) enum CollectorState {
    Aes(Box<PfaCollector>),
    Present(Box<PresentPfa>),
    Skipped,
}

/// A key recovered by analysis (at most one field is set, matching the
/// victim's cipher).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredKey {
    /// Recovered AES-128 key.
    pub aes: Option<[u8; 16]>,
    /// Recovered PRESENT-80 key.
    pub present: Option<[u8; 10]>,
}

impl RecoveredKey {
    /// Wraps an AES-128 key.
    #[must_use]
    pub fn from_aes(key: [u8; 16]) -> Self {
        RecoveredKey {
            aes: Some(key),
            present: None,
        }
    }

    /// Wraps a PRESENT-80 key.
    #[must_use]
    pub fn from_present(key: [u8; 10]) -> Self {
        RecoveredKey {
            aes: None,
            present: Some(key),
        }
    }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// Phase 0 (optional) — mapping probe: recover the controller's bank
/// mapping from access latencies, DRAMA-style.
///
/// A transient prober process times pairs of its own addresses: for each
/// pair it alternates the two reads (flushing its cache lines so every
/// read reaches DRAM) and keeps the *second* iteration's latency — by then
/// the row buffers are warm, so a same-bank/different-row pair pays a full
/// row conflict on every access while any other pair is served from an
/// open row. Each candidate mapping ([`MappingKind::Linear`],
/// [`MappingKind::Xor`]) predicts which pairs conflict; candidates that
/// disagree with any measurement are eliminated. The probe set includes a
/// guaranteed non-conflict pair (same row) and a guaranteed conflict pair
/// (a row delta that keeps the bank under *every* candidate), so the
/// latency threshold self-calibrates from the measured band.
///
/// Translating the probe addresses to physical frames is the one
/// privileged step — the same lab-machine reverse engineering the DRAMA
/// paper performed once per controller; the *recovered function* is what
/// the unprivileged attack consumes afterwards.
#[derive(Debug, Clone, Copy, Default)]
pub struct MappingProbePhase;

impl Phase for MappingProbePhase {
    type In = ();
    type Out = RecoveredMapping;

    fn name(&self) -> &'static str {
        "mapping-probe"
    }

    fn run(&mut self, ctx: &mut PhaseCtx<'_>, (): ()) -> Result<RecoveredMapping, AttackError> {
        let start = ctx.machine.now();
        let g = ctx.machine.config().dram.geometry;
        // One row step in the linear layout (col | bank | rank | channel |
        // row): the distance at which only the row field changes.
        let row_stride = u64::from(g.row_bytes) * g.total_banks();
        let banks = u64::from(g.banks);
        let deltas = [
            64,                     // same row: never a conflict
            u64::from(g.row_bytes), // next bank field, same row
            row_stride,             // row + 1: the Linear/Xor distinguisher
            2 * row_stride,         // row + 2
            3 * row_stride,         // row + 3
            banks * row_stride,     // row + banks: conflict under both
        ];
        let span = deltas.iter().max().expect("non-empty probe set") + PAGE_SIZE;
        let pages = span / PAGE_SIZE + 1;
        let prober = ctx.machine.spawn(ctx.config.attacker_cpu);
        let base = ctx.machine.mmap(prober, pages)?;
        ctx.machine.fill(prober, base, pages * PAGE_SIZE, 0)?;

        // The buffer is resident right after the fill, but on a walk
        // machine a collateral flip may already have detached a page —
        // propagate the segfault analog instead of panicking the worker.
        let pa_base = ctx
            .machine
            .translate(prober, base)
            .ok_or(MachineError::Unmapped {
                pid: prober,
                addr: base,
            })?;
        let mut measured = Vec::with_capacity(deltas.len());
        for &delta in &deltas {
            let vb = base + delta;
            let pb = ctx
                .machine
                .translate(prober, vb)
                .ok_or(MachineError::Unmapped {
                    pid: prober,
                    addr: vb,
                })?;
            let latency = probe_pair(ctx.machine, prober, base, vb)?;
            measured.push((pa_base, pb, latency));
        }
        ctx.machine.exit(prober)?;

        // Self-calibrating threshold: conflicts sit in the top half of the
        // measured latency band. A flat band means no conflicts at all.
        let lo = measured.iter().map(|m| m.2).min().expect("probes ran");
        let hi = measured.iter().map(|m| m.2).max().expect("probes ran");
        let conflicts = |latency: Nanos| hi > lo && 2 * latency >= lo + hi;

        let survivors: Vec<MappingKind> = [MappingKind::Linear, MappingKind::Xor]
            .into_iter()
            .filter(|kind| {
                let mapping = kind.build(g);
                measured.iter().all(|&(a, b, latency)| {
                    let ca = mapping.phys_to_coord(a);
                    let cb = mapping.phys_to_coord(b);
                    let predicted = ca.channel == cb.channel
                        && ca.rank == cb.rank
                        && ca.bank == cb.bank
                        && ca.row != cb.row;
                    predicted == conflicts(latency)
                })
            })
            .collect();
        let kind = match survivors[..] {
            [only] => Some(only),
            _ => None,
        };

        let row_pages = (u64::from(g.row_bytes) / PAGE_SIZE).max(1);
        let stride_pages = match kind {
            // Adjacent rows share the bank: one row step.
            Some(MappingKind::Linear) => row_pages * g.total_banks(),
            // The XOR folds the low row bits into the bank, so same-bank
            // rows are `banks` row steps apart.
            Some(MappingKind::Xor) => row_pages * g.total_banks() * banks,
            None => 0,
        };
        let probes = measured.len() as u32;
        let elapsed = ctx.machine.now() - start;
        ctx.emit(PhaseEvent::MappingProbed {
            kind: kind.map(MappingKind::label),
            stride_pages,
            probes,
            elapsed,
        });
        Ok(RecoveredMapping {
            kind,
            stride_pages,
            probes,
            elapsed,
        })
    }
}

/// Times one address pair: two flush-read-read rounds, returning the second
/// round's latency for the second address (the row buffers are warm by
/// then, so the value is purely the conflict/no-conflict signal).
fn probe_pair(
    machine: &mut SimMachine,
    pid: Pid,
    a: VirtAddr,
    b: VirtAddr,
) -> Result<Nanos, AttackError> {
    let mut byte = [0u8];
    let mut latency = 0;
    for _ in 0..2 {
        machine.clflush(pid, a)?;
        machine.clflush(pid, b)?;
        machine.read_timed(pid, a, &mut byte)?;
        latency = machine.read_timed(pid, b, &mut byte)?;
    }
    Ok(latency)
}

/// Phase 1 — template: spawn the attacker, map its buffer, and sweep it for
/// repeatable flips using the configured [`HammerStrategy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TemplatePhase {
    /// Sweep strategy (defaults to double-sided, the paper's sweep).
    pub strategy: HammerStrategy,
}

impl Phase for TemplatePhase {
    type In = ();
    type Out = TemplatePool;

    fn name(&self) -> &'static str {
        "template"
    }

    fn run(&mut self, ctx: &mut PhaseCtx<'_>, (): ()) -> Result<TemplatePool, AttackError> {
        let cfg = ctx.config;
        ctx.emit(PhaseEvent::TemplateStarted {
            pages: cfg.template_pages,
        });
        let attacker = ctx.machine.spawn(cfg.attacker_cpu);
        let buffer = ctx.machine.mmap(attacker, cfg.template_pages)?;
        let scan = template_scan_with(
            ctx.machine,
            attacker,
            buffer,
            cfg.template_pages,
            cfg.hammer_pairs,
            cfg.reproducibility_rounds,
            self.strategy,
        )?;
        ctx.counters.templates_found = scan.templates.len();
        ctx.emit(PhaseEvent::TemplateFinished {
            found: scan.templates.len(),
            rows_hammered: scan.rows_hammered,
            hammer_failures: scan.hammer_failures,
            elapsed: scan.elapsed,
        });
        Ok(TemplatePool {
            attacker,
            buffer,
            scan,
        })
    }
}

/// Phase 2 — release: `munmap` one vulnerable page so its frame lands at
/// the head of this CPU's page frame cache. The attacker stays active;
/// sleeping would let the idle kernel drain the cache (§V).
///
/// With DRAM-resident page tables the victim's arrival is not one
/// allocation but three: its spawn pops a root-table frame and its table
/// page's first touch pops a leaf-table frame *before* the table-data
/// frame. A bare release would land the templated frame under the victim's
/// root table — a self-defeating steer. The walk-aware release therefore
/// stages `WALK_TABLE_POPS` (two) fresh sacrificial pages first (their faults'
/// own allocations happen before any release, so they cannot consume the
/// template frame) and unmaps template-first, so the frame-cache LIFO reads
/// `[sac2, sac1, template]` and the victim's pops are root ← sac2,
/// leaf ← sac1, table data ← template.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReleasePhase;

impl Phase for ReleasePhase {
    type In = (Pid, FlipTemplate);
    type Out = ReleasedFrame;

    fn name(&self) -> &'static str {
        "release"
    }

    fn run(
        &mut self,
        ctx: &mut PhaseCtx<'_>,
        (attacker, template): (Pid, FlipTemplate),
    ) -> Result<ReleasedFrame, AttackError> {
        let pfn = ctx
            .machine
            .translate(attacker, template.page_va)
            .map(|pa| pa.as_u64() / PAGE_SIZE);
        let staged = if ctx.machine.config().dram_page_tables {
            stage_walk_sacrifices(ctx, attacker)?
        } else {
            None
        };
        ctx.machine.munmap(attacker, template.page_va, 1)?;
        if let Some(sac) = staged {
            // One page at a time, ascending, so the LIFO order is exact.
            for i in 0..WALK_TABLE_POPS {
                ctx.machine.munmap(attacker, sac + i * PAGE_SIZE, 1)?;
            }
        }
        ctx.emit(PhaseEvent::FrameReleased {
            page_index: template.page_index,
            pfn,
        });
        Ok(ReleasedFrame { template, pfn })
    }
}

/// Maps and touches the walk-mode sacrificial region (see [`ReleasePhase`]).
/// Returns its base, or `None` when the attacker's own walk is corrupted —
/// self-hazard is real on walk machines, and a failed staging should cost
/// one degraded round, not the campaign.
fn stage_walk_sacrifices(
    ctx: &mut PhaseCtx<'_>,
    attacker: Pid,
) -> Result<Option<VirtAddr>, AttackError> {
    let sac = ctx.machine.mmap(attacker, WALK_TABLE_POPS)?;
    match ctx
        .machine
        .fill(attacker, sac, WALK_TABLE_POPS * PAGE_SIZE, 0)
    {
        Ok(()) => Ok(Some(sac)),
        Err(e) if walk_casualty(&e) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Phase 3 — steer: start a victim service whose table page's first touch
/// pops the released frame off the page frame cache head, and collect one
/// pre-fault known pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct SteerPhase;

impl Phase for SteerPhase {
    type In = (ReleasedFrame, VictimCipherKind);
    type Out = SteeredVictim;

    fn name(&self) -> &'static str {
        "steer"
    }

    fn run(
        &mut self,
        ctx: &mut PhaseCtx<'_>,
        (released, kind): (ReleasedFrame, VictimCipherKind),
    ) -> Result<SteeredVictim, AttackError> {
        ctx.counters.fault_rounds += 1;
        let victim =
            VictimCipherService::start(ctx.machine, ctx.config.victim_cpu, kind, ctx.keys)?;
        let victim_pfn = victim.table_pfn(ctx.machine).map(|p| p.0);
        let steered = released.pfn.is_some() && victim_pfn == released.pfn;
        if steered {
            ctx.counters.steering_successes += 1;
        }

        // One pre-fault known pair (used by PRESENT master-key recovery).
        let mut known_plain = vec![0u8; victim.block_bytes()];
        ctx.rng.fill(&mut known_plain[..]);
        let mut known_cipher = known_plain.clone();
        if let Err(e) = victim.encrypt(ctx.machine, &mut known_cipher) {
            // Walk mode: a collateral flip in the victim's freshly popped
            // table frames can crash it on its very first encryption. Keep
            // the garbage pair — collection will classify the round as
            // crashed, and analysis only ever reads pairs from converged
            // rounds.
            if !walk_casualty(&e) {
                return Err(e.into());
            }
        }

        ctx.emit(PhaseEvent::VictimSteered {
            round: ctx.counters.fault_rounds,
            kind,
            steered,
            victim_pfn,
        });
        Ok(SteeredVictim {
            victim,
            template: released.template,
            steered,
            known_plain,
            known_cipher,
        })
    }
}

/// Phase 4 — hammer: re-hammer the retained aggressor rows around the
/// steered frame with the configured [`HammerStrategy`]. Produces `false`
/// when the hammer primitive rejects the aggressors (fragmented buffer).
#[derive(Debug, Clone, Copy, Default)]
pub struct HammerPhase {
    /// Activation pattern (defaults to double-sided).
    pub strategy: HammerStrategy,
}

impl Phase for HammerPhase {
    type In = (Pid, VirtAddr, FlipTemplate);
    type Out = bool;

    fn name(&self) -> &'static str {
        "hammer"
    }

    fn run(
        &mut self,
        ctx: &mut PhaseCtx<'_>,
        (attacker, buffer, template): (Pid, VirtAddr, FlipTemplate),
    ) -> Result<bool, AttackError> {
        let pairs = ctx.config.rehammer_pairs;
        let (ok, rows) = match self.strategy {
            HammerStrategy::DoubleSided => (
                ctx.machine
                    .hammer_pair_virt(
                        attacker,
                        template.aggressor_above,
                        template.aggressor_below,
                        pairs,
                    )
                    .is_ok(),
                2,
            ),
            HammerStrategy::ManySided { .. } => {
                let geometry = ctx.machine.config().dram.geometry;
                let aggressors = strategy_aggressors(
                    ctx.machine,
                    attacker,
                    self.strategy,
                    buffer,
                    ctx.config.template_pages,
                    template.aggressor_above,
                    template.aggressor_below,
                    crate::template::same_bank_stride_pages(&geometry),
                );
                (
                    ctx.machine
                        .hammer_rows_virt(attacker, &aggressors, pairs)
                        .is_ok(),
                    aggressors.len() as u32,
                )
            }
        };
        ctx.emit(PhaseEvent::HammerFinished {
            round: ctx.counters.fault_rounds,
            pairs,
            rows,
            ok,
        });
        Ok(ok)
    }
}

/// Phase 5a — collect: query victim encryptions until the fault statistics
/// converge, prove no fault landed, or the ciphertext budget runs out.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectPhase;

impl Phase for CollectPhase {
    type In = SteeredVictim;
    type Out = FaultedCiphertexts;

    fn name(&self) -> &'static str {
        "collect"
    }

    fn run(
        &mut self,
        ctx: &mut PhaseCtx<'_>,
        steered: SteeredVictim,
    ) -> Result<FaultedCiphertexts, AttackError> {
        let entry = steered.template.page_offset as usize;
        let before = ctx.counters.ciphertexts_collected;
        // The telemetry probe is pointless against a non-ECC DIMM (the
        // counters can never move); don't spend encryptions on it.
        if ctx.config.ecc_aware && ctx.machine.config().dram.ecc != dram::EccMode::Off {
            if let Some(outcome) = ecc_probe(ctx, &steered)? {
                let collected = ctx.counters.ciphertexts_collected - before;
                ctx.emit(PhaseEvent::CiphertextsCollected {
                    round: ctx.counters.fault_rounds,
                    collected,
                    outcome,
                });
                return Ok(FaultedCiphertexts {
                    victim: steered,
                    outcome,
                    collected,
                    data: CollectorState::Skipped,
                });
            }
        }
        let (outcome, data) = match steered.victim.kind() {
            VictimCipherKind::AesSbox => {
                let needed: Vec<usize> = (0..16).collect();
                let mut collector = PfaCollector::new();
                let outcome = collect_aes(ctx, &steered, &mut collector, &needed)?;
                (outcome, CollectorState::Aes(Box::new(collector)))
            }
            VictimCipherKind::AesTtable => {
                let fault = TableFault {
                    offset: entry,
                    bit: steered.template.bit,
                };
                match fault.classify_te() {
                    TeFaultClass::SLane { positions, .. } => {
                        let mut collector = PfaCollector::new();
                        let outcome = collect_aes(ctx, &steered, &mut collector, &positions)?;
                        (outcome, CollectorState::Aes(Box::new(collector)))
                    }
                    // Filtered by template selection; defensive.
                    _ => (CollectOutcome::Skipped, CollectorState::Skipped),
                }
            }
            VictimCipherKind::Present => {
                let mut collector = PresentPfa::new();
                let outcome = loop {
                    let mut block = [0u8; 8];
                    ctx.rng.fill(&mut block[..]);
                    match steered.victim.encrypt(ctx.machine, &mut block) {
                        Ok(()) => {}
                        Err(e) if walk_casualty(&e) => break CollectOutcome::VictimCrashed,
                        Err(e) => return Err(e.into()),
                    }
                    collector.observe(&block);
                    ctx.counters.ciphertexts_collected += 1;
                    if collector.total() % 32 == 0 || collector.all_positions_determined() {
                        if collector.all_positions_determined() {
                            break CollectOutcome::Converged;
                        }
                        if (0..16).any(|i| collector.unseen_count(i) == 0) {
                            break CollectOutcome::NoFault;
                        }
                        if collector.total() >= ctx.config.max_ciphertexts {
                            break CollectOutcome::Exhausted;
                        }
                    }
                };
                (outcome, CollectorState::Present(Box::new(collector)))
            }
        };
        let collected = ctx.counters.ciphertexts_collected - before;
        ctx.emit(PhaseEvent::CiphertextsCollected {
            round: ctx.counters.fault_rounds,
            collected,
            outcome,
        });
        Ok(FaultedCiphertexts {
            victim: steered,
            outcome,
            collected,
            data,
        })
    }
}

/// The ECC-aware pre-collection probe: a few throwaway encryptions while
/// watching the machine's corrected/detected error telemetry (on real
/// hardware, the EDAC counters any unprivileged attacker can read). A
/// rising *corrected* count with no detection means the DIMM is silently
/// healing the fault on every read — the round can never produce faulty
/// ciphertexts and is discarded for the cost of the probe. A rising
/// *detected* count (or silence) hands over to normal collection.
fn ecc_probe(
    ctx: &mut PhaseCtx<'_>,
    steered: &SteeredVictim,
) -> Result<Option<CollectOutcome>, AttackError> {
    let baseline = ctx.machine.dram().ecc_stats();
    for _ in 0..ECC_PROBE_CIPHERTEXTS {
        let mut block = vec![0u8; steered.victim.block_bytes()];
        ctx.rng.fill(&mut block[..]);
        match steered.victim.encrypt(ctx.machine, &mut block) {
            Ok(()) => {}
            Err(e) if walk_casualty(&e) => return Ok(Some(CollectOutcome::VictimCrashed)),
            Err(e) => return Err(e.into()),
        }
        ctx.counters.ciphertexts_collected += 1;
        let now = ctx.machine.dram().ecc_stats();
        if now.detected > baseline.detected {
            // Uncorrectable (multi-bit) fault live in the table: the
            // statistics are worth collecting.
            return Ok(None);
        }
        if now.corrected > baseline.corrected {
            return Ok(Some(CollectOutcome::Corrected));
        }
    }
    Ok(None)
}

/// Collects AES ciphertexts until `needed` positions are determined, a
/// needed position proves unfaulted, or the budget runs out.
fn collect_aes(
    ctx: &mut PhaseCtx<'_>,
    steered: &SteeredVictim,
    collector: &mut PfaCollector,
    needed: &[usize],
) -> Result<CollectOutcome, AttackError> {
    loop {
        let mut block = [0u8; 16];
        ctx.rng.fill(&mut block[..]);
        match steered.victim.encrypt(ctx.machine, &mut block) {
            Ok(()) => {}
            Err(e) if walk_casualty(&e) => return Ok(CollectOutcome::VictimCrashed),
            Err(e) => return Err(e.into()),
        }
        collector.observe(&block);
        ctx.counters.ciphertexts_collected += 1;
        if collector.total() % 64 == 0 {
            if needed.iter().all(|&p| collector.unseen_count(p) == 1) {
                return Ok(CollectOutcome::Converged);
            }
            if needed.iter().any(|&p| collector.unseen_count(p) == 0) {
                return Ok(CollectOutcome::NoFault);
            }
            if collector.total() >= ctx.config.max_ciphertexts {
                return Ok(CollectOutcome::Exhausted);
            }
        }
    }
}

/// Phase 5b — analyze: feed one round's statistics to the cipher's
/// persistent-fault analysis. Stateful: T-table recovery accumulates S-lane
/// faults across rounds until all four tables are covered.
#[derive(Debug)]
pub struct AnalyzePhase {
    ttable: TTablePfa,
    tables_needed: BTreeSet<usize>,
}

impl Default for AnalyzePhase {
    fn default() -> Self {
        AnalyzePhase {
            ttable: TTablePfa::new(),
            tables_needed: (0..4).collect(),
        }
    }
}

impl AnalyzePhase {
    /// A fresh analyzer (no absorbed faults, all four T-tables needed).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// T-tables whose S-lane still lacks an absorbed fault (template
    /// selection prefers templates landing in a still-needed table).
    #[must_use]
    pub fn tables_needed(&self) -> &BTreeSet<usize> {
        &self.tables_needed
    }
}

impl Phase for AnalyzePhase {
    type In = FaultedCiphertexts;
    type Out = Option<RecoveredKey>;

    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(
        &mut self,
        ctx: &mut PhaseCtx<'_>,
        faulted: FaultedCiphertexts,
    ) -> Result<Option<RecoveredKey>, AttackError> {
        let entry = faulted.victim.template.page_offset as usize;
        let recovered = if faulted.outcome != CollectOutcome::Converged {
            None
        } else {
            match (&faulted.data, faulted.victim.victim.kind()) {
                (CollectorState::Aes(collector), VictimCipherKind::AesSbox) => collector
                    .analyze_known_fault(TableImage::sbox()[entry])
                    .master_key()
                    .map(RecoveredKey::from_aes),
                (CollectorState::Aes(collector), VictimCipherKind::AesTtable) => {
                    let fault = TableFault {
                        offset: entry,
                        bit: faulted.victim.template.bit,
                    };
                    if self.ttable.absorb(fault, collector).is_some() {
                        let (table, _, _) = TableImage::te_locate(entry);
                        self.tables_needed.remove(&table);
                    }
                    self.ttable.master_key().map(RecoveredKey::from_aes)
                }
                (CollectorState::Present(collector), _) => {
                    let v = PRESENT_SBOX[entry];
                    let plain: [u8; 8] = faulted.victim.known_plain[..]
                        .try_into()
                        .expect("PRESENT block");
                    let cipher: [u8; 8] = faulted.victim.known_cipher[..]
                        .try_into()
                        .expect("PRESENT block");
                    collector
                        .recover_master_key(v, |cand| {
                            let mut b = plain;
                            Present80::new(
                                cand,
                                RamTableSource::new(present_sbox_image().to_vec()),
                            )
                            .encrypt_block(&mut b);
                            b == cipher
                        })
                        .map(RecoveredKey::from_present)
                }
                _ => None,
            }
        };
        if let Some(key) = &recovered {
            if let Some(aes) = key.aes {
                ctx.counters.recovered_aes_key = Some(aes);
            }
            if let Some(present) = key.present {
                ctx.counters.recovered_present_key = Some(present);
            }
        }
        ctx.emit(PhaseEvent::RoundAnalyzed {
            round: ctx.counters.fault_rounds,
            key_recovered: recovered.is_some(),
        });
        Ok(recovered)
    }
}

// ---------------------------------------------------------------------------
// Template selection
// ---------------------------------------------------------------------------

/// Whether a template *fires* against the victim's image: its offset falls
/// inside the table image and the image's bit at that location holds the
/// charged value the flip discharges.
fn template_fires(t: &FlipTemplate, kind: VictimCipherKind) -> bool {
    let off = t.page_offset as usize;
    if off >= kind.image_len() {
        return false;
    }
    let image_bit = match kind {
        VictimCipherKind::AesSbox => TableImage::sbox()[off] & (1 << t.bit) != 0,
        VictimCipherKind::AesTtable => TableImage::te_tables()[off] & (1 << t.bit) != 0,
        VictimCipherKind::Present => present_sbox_image()[off] & (1 << t.bit) != 0,
    };
    image_bit == t.required_bit_value()
}

/// Selects one attack template per vulnerable page: pages where *exactly
/// one* templated flip fires against the victim image (several simultaneous
/// table faults would break the single-missing-value statistics), and that
/// flip is analytically usable ([`template_usable`]).
pub fn select_attack_pages(
    templates: &[FlipTemplate],
    kind: VictimCipherKind,
) -> Vec<FlipTemplate> {
    let mut by_page: std::collections::BTreeMap<u64, Vec<&FlipTemplate>> =
        std::collections::BTreeMap::new();
    for t in templates {
        by_page.entry(t.page_index).or_default().push(t);
    }
    let mut out = Vec::new();
    for (_, page_templates) in by_page {
        let firing: Vec<&&FlipTemplate> = page_templates
            .iter()
            .filter(|t| template_fires(t, kind))
            .collect();
        if let [only] = firing[..] {
            if template_usable(only, kind) {
                out.push(**only);
            }
        }
    }
    out
}

/// Whether a template can corrupt the victim's table usefully: its offset
/// must fall inside the table image, the image's bit at that location must
/// hold the charged value the flip discharges, and for T-table/PRESENT
/// victims the location must be analytically exploitable.
pub fn template_usable(t: &FlipTemplate, kind: VictimCipherKind) -> bool {
    let off = t.page_offset as usize;
    if off >= kind.image_len() || t.reproducibility < 0.5 {
        return false;
    }
    let image_bit = match kind {
        VictimCipherKind::AesSbox => TableImage::sbox()[off] & (1 << t.bit) != 0,
        VictimCipherKind::AesTtable => TableImage::te_tables()[off] & (1 << t.bit) != 0,
        VictimCipherKind::Present => present_sbox_image()[off] & (1 << t.bit) != 0,
    };
    if image_bit != t.required_bit_value() {
        return false;
    }
    match kind {
        VictimCipherKind::AesSbox => true,
        VictimCipherKind::AesTtable => TableFault {
            offset: off,
            bit: t.bit,
        }
        .classify_te()
        .is_exploitable(),
        // Table bytes store one 4-bit S-box value each; flips in the unused
        // high nibble are masked out by the S-layer.
        VictimCipherKind::Present => t.bit < 4,
    }
}

/// Picks the next template: for T-table victims, one whose fault lands in a
/// still-needed table; otherwise simply the most reproducible remaining.
pub(crate) fn pick_template(
    remaining: &mut Vec<FlipTemplate>,
    kind: VictimCipherKind,
    tables_needed: &BTreeSet<usize>,
) -> Option<FlipTemplate> {
    let idx = match kind {
        VictimCipherKind::AesTtable => remaining.iter().position(|t| {
            let (table, _, _) = TableImage::te_locate(t.page_offset as usize);
            tables_needed.contains(&table)
        })?,
        _ => {
            if remaining.is_empty() {
                return None;
            }
            0
        }
    };
    Some(remaining.remove(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::CellPolarity;
    use machine::VirtAddr;

    fn template(offset: u16, bit: u8, one_to_zero: bool) -> FlipTemplate {
        let _ = CellPolarity::True;
        FlipTemplate {
            page_index: 0,
            page_va: VirtAddr(0),
            page_offset: offset,
            bit,
            one_to_zero,
            aggressor_above: VirtAddr(0),
            aggressor_below: VirtAddr(0),
            reproducibility: 1.0,
        }
    }

    #[test]
    fn usability_respects_image_bounds_and_bits() {
        // S-box entry 0 is 0x63 = 0b0110_0011.
        assert!(template_usable(
            &template(0, 0, true),
            VictimCipherKind::AesSbox
        ));
        assert!(!template_usable(
            &template(0, 2, true),
            VictimCipherKind::AesSbox
        ));
        assert!(template_usable(
            &template(0, 2, false),
            VictimCipherKind::AesSbox
        ));
        // Outside the 256-byte image.
        assert!(!template_usable(
            &template(256, 0, true),
            VictimCipherKind::AesSbox
        ));
        // Low reproducibility is rejected.
        let mut t = template(0, 0, true);
        t.reproducibility = 0.1;
        assert!(!template_usable(&t, VictimCipherKind::AesSbox));
    }

    #[test]
    fn ttable_usability_requires_s_lane() {
        let te = TableImage::te_tables();
        // Find an S-lane offset with a set bit and a non-S-lane one.
        let s_lane_off = TableImage::te_entry_offset(0, 0x53) + ciphers::FINAL_ROUND_S_LANE[0];
        let bit = (0..8).find(|&b| te[s_lane_off] & (1 << b) != 0).unwrap();
        assert!(template_usable(
            &template(s_lane_off as u16, bit, true),
            VictimCipherKind::AesTtable
        ));
        let other_off = TableImage::te_entry_offset(0, 0x53); // lane 0 = 3S lane
        let bit2 = (0..8).find(|&b| te[other_off] & (1 << b) != 0).unwrap();
        assert!(!template_usable(
            &template(other_off as u16, bit2, true),
            VictimCipherKind::AesTtable
        ));
    }

    #[test]
    fn present_usability_requires_low_nibble() {
        // PRESENT S[0] = 0xC = 0b1100: bits 2,3 set.
        assert!(template_usable(
            &template(0, 2, true),
            VictimCipherKind::Present
        ));
        assert!(!template_usable(
            &template(0, 4, true),
            VictimCipherKind::Present
        ));
        assert!(!template_usable(
            &template(0, 4, false),
            VictimCipherKind::Present
        ));
        assert!(template_usable(
            &template(0, 1, false),
            VictimCipherKind::Present
        ));
    }

    #[test]
    fn pick_template_covers_needed_tables() {
        let te = TableImage::te_tables();
        let mk = |table: usize| {
            let off = TableImage::te_entry_offset(table, 7) + ciphers::FINAL_ROUND_S_LANE[table];
            let bit = (0..8).find(|&b| te[off] & (1 << b) != 0).unwrap();
            template(off as u16, bit, true)
        };
        let mut remaining = vec![mk(1), mk(0), mk(1)];
        let mut needed: BTreeSet<usize> = [0].into_iter().collect();
        let picked = pick_template(&mut remaining, VictimCipherKind::AesTtable, &needed).unwrap();
        let (table, _, _) = TableImage::te_locate(picked.page_offset as usize);
        assert_eq!(table, 0);
        needed.clear();
        assert!(pick_template(&mut remaining, VictimCipherKind::AesTtable, &needed).is_none());
    }

    #[test]
    fn template_pool_usable_sorts_by_reproducibility() {
        let mut low = template(0, 0, true);
        low.reproducibility = 0.7;
        low.page_index = 1;
        let mut high = template(0, 0, true);
        high.reproducibility = 1.0;
        high.page_index = 2;
        let pool = TemplatePool {
            attacker: Pid(1),
            buffer: VirtAddr(0),
            scan: TemplateScan {
                templates: vec![low, high],
                ..TemplateScan::default()
            },
        };
        let usable = pool.usable(VictimCipherKind::AesSbox);
        assert_eq!(usable.len(), 2);
        assert!(usable[0].reproducibility >= usable[1].reproducibility);
    }

    #[test]
    fn recovered_key_constructors_set_one_side() {
        let aes = RecoveredKey::from_aes([7; 16]);
        assert!(aes.aes.is_some() && aes.present.is_none());
        let present = RecoveredKey::from_present([9; 10]);
        assert!(present.present.is_some() && present.aes.is_none());
    }
}
