//! The composable attack pipeline driver.
//!
//! A [`Pipeline`] strings [`Phase`]s together over one machine, one seeded
//! attacker RNG, one set of [`Counters`], and one
//! [`Observer`](crate::Observer) — and leaves the *order* of phases to the
//! caller. [`ExplFrame::run`](crate::ExplFrame::run) is the paper's
//! standard composition; scenarios the monolithic driver could not express
//! are a few lines each:
//!
//! * **template-once / steer-many** — release a vulnerable frame once, then
//!   steer → hammer → collect → analyze across N victim restarts,
//!   amortizing the expensive templating sweep (`exp_t7_template_reuse`);
//! * **mixed-cipher multi-victim** — one templating sweep, then attack
//!   victims running *different* ciphers on the same machine
//!   (`exp_t8_mixed_victims`).

use dram::Nanos;
use machine::{MachineSnapshot, SimMachine};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::attack::{AttackOutcome, AttackReport};
use crate::config::{ExplFrameConfig, HammerStrategy, VictimCipherKind};
use crate::error::AttackError;
use crate::events::{NullObserver, Observer, PhaseEvent};
use crate::phase::{
    pick_template, AnalyzePhase, CollectPhase, Counters, FaultedCiphertexts, HammerPhase,
    MappingProbePhase, Phase, PhaseCtx, RecoveredKey, RecoveredMapping, ReleasePhase,
    ReleasedFrame, SteerPhase, SteeredVictim, TemplatePhase, TemplatePool,
};
use crate::template::{FlipTemplate, TemplateMemo};
use crate::victim::{VictimCipherService, VictimKeys};

/// Salt mixed into the configuration seed for the attacker RNG (matches the
/// pre-pipeline driver, keeping reports byte-identical per seed).
const ATTACK_RNG_SALT: u64 = 0xA77A_C4E2;

/// A running attack pipeline: phases share the machine, the attacker RNG,
/// the counters, and the observer through this driver.
///
/// # Examples
///
/// The standard five-phase composition (what
/// [`ExplFrame::run`](crate::ExplFrame::run) does), written out by hand:
///
/// ```no_run
/// use explframe_core::{
///     AttackOutcome, ExplFrameConfig, Pipeline, TraceCollector, VictimCipherKind,
/// };
/// use machine::SimMachine;
///
/// let config = ExplFrameConfig::small_demo(1).with_template_pages(1024);
/// let mut machine = SimMachine::new(config.machine.clone());
/// let mut trace = TraceCollector::new();
/// let mut pipe = Pipeline::new(&mut machine, config).with_observer(&mut trace);
///
/// let pool = pipe.template()?;
/// let mut remaining = pipe.select(&pool, VictimCipherKind::AesSbox);
/// while let Some(template) = pipe.next_template(&mut remaining, VictimCipherKind::AesSbox) {
///     let released = pipe.release(&pool, template)?;
///     let steered = pipe.steer(&released)?;
///     let victim = steered.victim;
///     let recovered = if pipe.hammer(&pool, &steered)? {
///         let faulted = pipe.collect(steered)?;
///         pipe.analyze(faulted)?
///     } else {
///         None
///     };
///     pipe.stop_victim(victim)?;
///     if recovered.is_some() {
///         let report = pipe.finish(AttackOutcome::KeyRecovered);
///         assert!(report.succeeded());
///         break;
///     }
/// }
/// # Ok::<(), explframe_core::AttackError>(())
/// ```
pub struct Pipeline<'m, 'o> {
    config: ExplFrameConfig,
    machine: &'m mut SimMachine,
    rng: StdRng,
    observer: Option<&'o mut dyn Observer>,
    null: NullObserver,
    keys: VictimKeys,
    counters: Counters,
    start_time: Nanos,
    hammer_start: u64,
    acts_start: u64,
    analyzer: AnalyzePhase,
    strategy: HammerStrategy,
}

impl<'m, 'o> Pipeline<'m, 'o> {
    /// Creates a pipeline over `machine` with the standard attacker RNG
    /// seeding (`config.seed` salted as the attack driver always has).
    pub fn new(machine: &'m mut SimMachine, config: ExplFrameConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed ^ ATTACK_RNG_SALT);
        Self::with_rng(machine, config, rng)
    }

    /// Creates a pipeline with an explicit attacker RNG (compositions that
    /// must reproduce a different historical seeding, e.g. the spray
    /// baseline).
    pub fn with_rng(machine: &'m mut SimMachine, config: ExplFrameConfig, rng: StdRng) -> Self {
        let keys = VictimKeys::from_seed(config.seed);
        let start_time = machine.now();
        let hammer_start = machine.stats().hammer_pairs;
        let acts_start = machine.dram().stats().acts;
        let strategy = config.strategy;
        Pipeline {
            config,
            machine,
            rng,
            observer: None,
            null: NullObserver,
            keys,
            counters: Counters::default(),
            start_time,
            hammer_start,
            acts_start,
            analyzer: AnalyzePhase::new(),
            strategy,
        }
    }

    /// Attaches an [`Observer`] receiving every [`PhaseEvent`]. Observers
    /// are pure listeners; attaching one never changes the run's results.
    #[must_use]
    pub fn with_observer(mut self, observer: &'o mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs one phase against this pipeline's context.
    ///
    /// This is the single choke point every phase passes through, so it is
    /// also where the run attributes host wall-clock and machine ops to the
    /// phase's `perf` key. With the registry disabled (the default) both
    /// hooks reduce to one relaxed atomic load; perf can never feed back
    /// into the simulation.
    fn phase<P: Phase>(&mut self, phase: &mut P, input: P::In) -> Result<P::Out, AttackError> {
        let name = phase.name();
        let key = phase_perf_key(name);
        let _timer = perf::scope(key);
        let Pipeline {
            config,
            machine,
            rng,
            observer,
            null,
            keys,
            counters,
            ..
        } = self;
        let ops_before = perf::is_enabled().then(|| machine_ops(machine));
        let sim_before = perf::is_enabled().then(|| machine.now());
        let observer: &mut dyn Observer = match observer {
            Some(o) => &mut **o,
            None => null,
        };
        let mut ctx = PhaseCtx {
            config,
            machine,
            rng,
            observer,
            counters,
            keys: *keys,
        };
        let out = phase.run(&mut ctx, input);
        if let Some(before) = ops_before {
            perf::count(key, machine_ops(ctx.machine).saturating_sub(before));
        }
        if let Some(before) = sim_before {
            // Simulated nanoseconds attributed to the phase — with the
            // timing engine on, this is command-clock time, the per-phase
            // trajectory the timing campaign records.
            perf::count(
                phase_sim_key(name),
                ctx.machine.now().saturating_sub(before),
            );
        }
        out
    }

    fn emit(&mut self, event: PhaseEvent) {
        if let Some(observer) = &mut self.observer {
            observer.on_event(&event);
        }
    }

    // ------------------------------------------------------------------
    // Phases
    // ------------------------------------------------------------------

    /// Phase 0 (optional) — mapping probe: recover the controller's bank
    /// mapping from row-conflict latencies (see
    /// [`MappingProbePhase`]). Runs a transient prober process; the
    /// recovered kind and same-bank stride are reported via
    /// [`PhaseEvent::MappingProbed`](crate::PhaseEvent::MappingProbed).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn probe_mapping(&mut self) -> Result<RecoveredMapping, AttackError> {
        self.phase(&mut MappingProbePhase, ())
    }

    /// Phase 1 — template: spawn the attacker and sweep its buffer for
    /// repeatable flips with the pipeline's current [`HammerStrategy`].
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn template(&mut self) -> Result<TemplatePool, AttackError> {
        let mut phase = TemplatePhase {
            strategy: self.strategy,
        };
        self.phase(&mut phase, ())
    }

    /// [`template`](Self::template) through a [`TemplateMemo`]: if the memo
    /// holds a sweep taken from a byte-identical machine state with the
    /// same scan parameters, the machine jumps straight to the cached
    /// post-sweep state and the cached pool is returned — no hammering at
    /// all. A miss runs the sweep live and caches it. Either way the
    /// counters, the emitted events and every subsequent phase are
    /// byte-identical to the uncached pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn template_memo(&mut self, memo: &mut TemplateMemo) -> Result<TemplatePool, AttackError> {
        let pre = self.machine.snapshot();
        self.template_memo_at(&pre, memo)
    }

    /// [`template_memo`](Self::template_memo) keyed on a caller-provided
    /// snapshot of the machine's *current* state, instead of taking a fresh
    /// one. On the warm-pool path every trial forks from one shared
    /// snapshot and templates immediately, so the caller already holds the
    /// exact pre-sweep state — passing it in skips the per-trial snapshot,
    /// and, because the memo stores a clone of the same capture, the hit
    /// comparison short-circuits on shared structure instead of walking
    /// DRAM chunks and cache sets.
    ///
    /// `pre` must equal the machine's current state byte-for-byte (checked
    /// under `debug_assertions`); a mismatched snapshot would replay a
    /// sweep from a different machine state.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn template_memo_at(
        &mut self,
        pre: &MachineSnapshot,
        memo: &mut TemplateMemo,
    ) -> Result<TemplatePool, AttackError> {
        let _timer = perf::scope("phase.template");
        debug_assert!(
            self.machine.snapshot() == *pre,
            "caller snapshot must match the machine state at template time"
        );
        if let Some((post, pool)) = memo.lookup(&self.config, self.strategy, pre) {
            perf::count("phase.template.memo_hits", 1);
            let pool = pool.clone();
            self.machine.restore(post);
            self.counters.templates_found = pool.scan.templates.len();
            self.emit(PhaseEvent::TemplateStarted {
                pages: self.config.template_pages,
            });
            self.emit(PhaseEvent::TemplateFinished {
                found: pool.scan.templates.len(),
                rows_hammered: pool.scan.rows_hammered,
                hammer_failures: pool.scan.hammer_failures,
                elapsed: pool.scan.elapsed,
            });
            return Ok(pool);
        }
        let strategy = self.strategy;
        let pool = self.template()?;
        memo.insert(
            &self.config,
            strategy,
            pre.clone(),
            self.machine.snapshot(),
            pool.clone(),
        );
        Ok(pool)
    }

    /// [`template_adaptive`](Self::template_adaptive) through a
    /// [`TemplateMemo`]: each of the (up to two) sweeps is memoized
    /// individually, so an escalating run caches two entries and replays
    /// both on later trials.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn template_adaptive_memo(
        &mut self,
        escalate_to: HammerStrategy,
        memo: &mut TemplateMemo,
    ) -> Result<TemplatePool, AttackError> {
        let pre = self.machine.snapshot();
        self.template_adaptive_memo_at(&pre, escalate_to, memo)
    }

    /// [`template_adaptive_memo`](Self::template_adaptive_memo) keyed on a
    /// caller-provided pre-sweep snapshot (see
    /// [`template_memo_at`](Self::template_memo_at)). Only the first sweep
    /// uses `pre`; an escalated re-sweep starts from the post-sweep machine
    /// state, which the caller cannot hold, so it is re-keyed on a fresh
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn template_adaptive_memo_at(
        &mut self,
        pre: &MachineSnapshot,
        escalate_to: HammerStrategy,
        memo: &mut TemplateMemo,
    ) -> Result<TemplatePool, AttackError> {
        let pool = self.template_memo_at(pre, memo)?;
        if !pool.scan.templates.is_empty() || escalate_to == self.strategy {
            return Ok(pool);
        }
        self.escalate(escalate_to);
        self.template_memo(memo)
    }

    /// Adaptive templating: sweep with the current strategy; if the sweep
    /// comes back *empty* — the signature of a Target-Row-Refresh engine
    /// refreshing every sandwiched victim before its threshold — escalate
    /// to `escalate_to` (emitting [`PhaseEvent::StrategyEscalated`]) and
    /// sweep again. The returned pool is from the last sweep; subsequent
    /// [`Self::hammer`] calls use the escalated strategy.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn template_adaptive(
        &mut self,
        escalate_to: HammerStrategy,
    ) -> Result<TemplatePool, AttackError> {
        let pool = self.template()?;
        if !pool.scan.templates.is_empty() || escalate_to == self.strategy {
            return Ok(pool);
        }
        self.escalate(escalate_to);
        self.template()
    }

    /// Switches the hammer strategy used by subsequent templating and
    /// re-hammer phases, recording the escalation in the counters and the
    /// event stream.
    pub fn escalate(&mut self, to: HammerStrategy) {
        let from = self.strategy;
        self.strategy = to;
        self.counters.strategy_escalations += 1;
        self.emit(PhaseEvent::StrategyEscalated { from, to });
    }

    /// The hammer strategy currently in force.
    #[must_use]
    pub fn strategy(&self) -> HammerStrategy {
        self.strategy
    }

    /// Filters the pool against `kind`'s table layout (best-reproducing
    /// first), recording the usable count and emitting
    /// [`PhaseEvent::TemplatesSelected`].
    pub fn select(&mut self, pool: &TemplatePool, kind: VictimCipherKind) -> Vec<FlipTemplate> {
        let usable = pool.usable(kind);
        self.counters.usable_templates = usable.len();
        self.emit(PhaseEvent::TemplatesSelected {
            kind,
            usable: usable.len(),
        });
        usable
    }

    /// Picks (and removes) the next template to spend: for T-table victims,
    /// one landing in a table the analyzer still needs; otherwise the most
    /// reproducible remaining.
    pub fn next_template(
        &self,
        remaining: &mut Vec<FlipTemplate>,
        kind: VictimCipherKind,
    ) -> Option<FlipTemplate> {
        pick_template(remaining, kind, self.analyzer.tables_needed())
    }

    /// Phase 2 — release: `munmap` the template's page so its frame lands
    /// at the head of the CPU's page frame cache.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn release(
        &mut self,
        pool: &TemplatePool,
        template: FlipTemplate,
    ) -> Result<ReleasedFrame, AttackError> {
        self.phase(&mut ReleasePhase, (pool.attacker, template))
    }

    /// Releases the *entire* template buffer (the spray baseline's move —
    /// an attacker who cannot steer gives all frames back at once).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn release_all(&mut self, pool: &TemplatePool) -> Result<(), AttackError> {
        self.machine
            .munmap(pool.attacker, pool.buffer, self.config.template_pages)?;
        Ok(())
    }

    /// Phase 3 — steer: start a victim of the configured cipher whose table
    /// page's first touch pops the released frame.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn steer(&mut self, released: &ReleasedFrame) -> Result<SteeredVictim, AttackError> {
        self.steer_as(released, self.config.victim)
    }

    /// [`steer`](Self::steer) with an explicit victim cipher (mixed-cipher
    /// compositions steer different victims onto different frames).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn steer_as(
        &mut self,
        released: &ReleasedFrame,
        kind: VictimCipherKind,
    ) -> Result<SteeredVictim, AttackError> {
        self.phase(&mut SteerPhase, (*released, kind))
    }

    /// Phase 4 — hammer: re-hammer the retained aggressors around the
    /// steered frame with the pipeline's current [`HammerStrategy`].
    /// `Ok(false)` means the hammer primitive rejected the aggressor set
    /// (fragmented buffer) and the round should be skipped.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn hammer(
        &mut self,
        pool: &TemplatePool,
        steered: &SteeredVictim,
    ) -> Result<bool, AttackError> {
        let mut phase = HammerPhase {
            strategy: self.strategy,
        };
        self.phase(&mut phase, (pool.attacker, pool.buffer, steered.template))
    }

    /// Phase 5a — collect: query victim encryptions until the fault
    /// statistics converge or the round proves hopeless.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn collect(&mut self, steered: SteeredVictim) -> Result<FaultedCiphertexts, AttackError> {
        self.phase(&mut CollectPhase, steered)
    }

    /// Phase 5b — analyze: feed the round's statistics to the cipher's
    /// persistent-fault analysis. `Some` once the full key is out.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn analyze(
        &mut self,
        faulted: FaultedCiphertexts,
    ) -> Result<Option<RecoveredKey>, AttackError> {
        let mut analyzer = std::mem::take(&mut self.analyzer);
        let out = self.phase(&mut analyzer, faulted);
        self.analyzer = analyzer;
        out
    }

    // ------------------------------------------------------------------
    // Primitives for custom compositions
    // ------------------------------------------------------------------

    /// Starts a victim service without steering bookkeeping (the spray
    /// baseline's victim arrives unsteered).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn spawn_victim(
        &mut self,
        kind: VictimCipherKind,
    ) -> Result<VictimCipherService, AttackError> {
        VictimCipherService::start(self.machine, self.config.victim_cpu, kind, self.keys)
            .map_err(AttackError::from)
    }

    /// Terminates a victim, returning its table frame to the page frame
    /// cache (where the *next* steer can pick it up again).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures.
    pub fn stop_victim(&mut self, victim: VictimCipherService) -> Result<(), AttackError> {
        victim.stop(self.machine)?;
        Ok(())
    }

    /// Advances simulated time by one full refresh window, letting all
    /// hammer disturbance refresh away — required between repeated hammer
    /// rounds on the *same* aggressors (template-once / steer-many), since
    /// a weak cell only flips when disturbance crosses its threshold within
    /// one window.
    pub fn settle(&mut self) {
        let window = self.machine.config().dram.timing.refresh_window();
        self.machine.advance(window);
    }

    /// Checks a recovered key against the ground-truth victim keys
    /// (experiment oracle).
    #[must_use]
    pub fn verify_key(&self, kind: VictimCipherKind, key: &RecoveredKey) -> bool {
        match kind {
            VictimCipherKind::AesSbox | VictimCipherKind::AesTtable => {
                key.aes == Some(self.keys.aes)
            }
            VictimCipherKind::Present => key.present == Some(self.keys.present),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The attack configuration.
    #[must_use]
    pub fn config(&self) -> &ExplFrameConfig {
        &self.config
    }

    /// The run's accumulating tallies.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Ground-truth victim keys (experiment oracle).
    #[must_use]
    pub fn victim_keys(&self) -> VictimKeys {
        self.keys
    }

    /// Simulated time consumed since the pipeline was created.
    #[must_use]
    pub fn elapsed(&self) -> Nanos {
        self.machine.now() - self.start_time
    }

    /// Aggressor pairs hammered since the pipeline was created (templating
    /// and re-hammering).
    #[must_use]
    pub fn hammer_pairs_spent(&self) -> u64 {
        self.machine.stats().hammer_pairs - self.hammer_start
    }

    /// Direct machine access for composition-specific steps (noise
    /// processes, oracle reads). Splits off the attacker RNG so both can be
    /// used together.
    pub fn split(&mut self) -> (&mut SimMachine, &mut StdRng) {
        (self.machine, &mut self.rng)
    }

    /// Finalizes the run: emits [`PhaseEvent::PipelineFinished`] and builds
    /// the [`AttackReport`] (key verified against the configured victim's
    /// ground truth).
    pub fn finish(mut self, outcome: AttackOutcome) -> AttackReport {
        let elapsed = self.elapsed();
        let hammer_pairs_spent = self.hammer_pairs_spent();
        // How much faster the run could have activated rows before hitting
        // the per-window activation budget the command clock enforces:
        // (budget) / (activations per refresh window actually achieved).
        // Only meaningful — and only computed — with the timing engine on.
        let hammer_rate_headroom = if self.config.machine.dram.timed {
            let timing = self.config.machine.dram.timing;
            let acts = self.machine.dram().stats().acts - self.acts_start;
            (acts > 0 && elapsed > 0).then(|| {
                let achieved_per_window =
                    acts as f64 * timing.refresh_window() as f64 / elapsed as f64;
                timing.max_acts_per_window() as f64 / achieved_per_window
            })
        } else {
            None
        };
        self.emit(PhaseEvent::PipelineFinished {
            outcome,
            fault_rounds: self.counters.fault_rounds,
            elapsed,
        });
        let key_correct = self.verify_key(
            self.config.victim,
            &RecoveredKey {
                aes: self.counters.recovered_aes_key,
                present: self.counters.recovered_present_key,
            },
        );
        AttackReport {
            outcome,
            templates_found: self.counters.templates_found,
            usable_templates: self.counters.usable_templates,
            steering_successes: self.counters.steering_successes,
            fault_rounds: self.counters.fault_rounds,
            ciphertexts_collected: self.counters.ciphertexts_collected,
            hammer_pairs_spent,
            recovered_aes_key: self.counters.recovered_aes_key,
            recovered_present_key: self.counters.recovered_present_key,
            key_correct,
            strategy_escalations: self.counters.strategy_escalations,
            elapsed,
            hammer_rate_headroom,
        }
    }
}

/// Maps a phase's dynamic name onto its static `perf` registry key — the
/// registry keys by `&'static str`, so the `"phase."` namespace prefix has
/// to be baked in at compile time.
fn phase_perf_key(name: &str) -> &'static str {
    match name {
        "mapping-probe" => "phase.mapping_probe",
        "template" => "phase.template",
        "release" => "phase.release",
        "steer" => "phase.steer",
        "hammer" => "phase.hammer",
        "collect" => "phase.collect",
        "analyze" => "phase.analyze",
        _ => "phase.other",
    }
}

/// The simulated-time counterpart of [`phase_perf_key`]: the key under
/// which a phase's simulated-nanosecond consumption is counted.
fn phase_sim_key(name: &str) -> &'static str {
    match name {
        "mapping-probe" => "phase.mapping_probe.sim_ns",
        "template" => "phase.template.sim_ns",
        "release" => "phase.release.sim_ns",
        "steer" => "phase.steer.sim_ns",
        "hammer" => "phase.hammer.sim_ns",
        "collect" => "phase.collect.sim_ns",
        "analyze" => "phase.analyze.sim_ns",
        _ => "phase.other.sim_ns",
    }
}

/// Machine operations attributed to a phase: reads + writes + hammer pairs
/// (the three op families the hot path is made of).
fn machine_ops(machine: &SimMachine) -> u64 {
    let s = machine.stats();
    s.reads + s.writes + s.hammer_pairs
}

impl std::fmt::Debug for Pipeline<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("config", &self.config)
            .field("counters", &self.counters)
            .field("observed", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::TraceCollector;
    use crate::ExplFrame;

    fn config(seed: u64) -> ExplFrameConfig {
        ExplFrameConfig::small_demo(seed).with_template_pages(512)
    }

    #[test]
    fn manual_composition_matches_explframe_run() {
        let report = ExplFrame::new(config(3)).run().expect("driver run");

        let cfg = config(3);
        let mut machine = SimMachine::new(cfg.machine.clone());
        let mut pipe = Pipeline::new(&mut machine, cfg.clone());
        let pool = pipe.template().expect("template");
        let mut remaining = pipe.select(&pool, cfg.victim);
        let manual = if remaining.is_empty() {
            pipe.finish(AttackOutcome::NoUsableTemplates)
        } else {
            let mut result = None;
            while pipe.counters().fault_rounds < cfg.max_fault_rounds {
                let Some(t) = pipe.next_template(&mut remaining, cfg.victim) else {
                    break;
                };
                let released = pipe.release(&pool, t).expect("release");
                let steered = pipe.steer(&released).expect("steer");
                let victim = steered.victim;
                if !pipe.hammer(&pool, &steered).expect("hammer") {
                    pipe.stop_victim(victim).expect("stop");
                    continue;
                }
                let faulted = pipe.collect(steered).expect("collect");
                let recovered = pipe.analyze(faulted).expect("analyze");
                pipe.stop_victim(victim).expect("stop");
                if recovered.is_some() {
                    result = Some(AttackOutcome::KeyRecovered);
                    break;
                }
            }
            pipe.finish(result.unwrap_or(AttackOutcome::OutOfTemplates))
        };
        assert_eq!(manual, report, "manual composition diverged from run()");
    }

    #[test]
    fn observer_does_not_change_the_report() {
        let untraced = ExplFrame::new(config(5)).run().expect("untraced");
        let mut trace = TraceCollector::new();
        let traced = ExplFrame::new(config(5))
            .run_traced(&mut trace)
            .expect("traced");
        assert_eq!(untraced, traced, "attaching an observer changed the run");
        assert!(!trace.is_empty(), "trace recorded nothing");
        // The trace brackets the run: starts with templating, ends with the
        // pipeline outcome.
        assert_eq!(trace.events().first().unwrap().name(), "template-started");
        assert_eq!(trace.events().last().unwrap().name(), "pipeline-finished");
    }

    #[test]
    fn phases_record_perf_time_and_ops_when_enabled() {
        use crate::events::PerfObserver;

        // Instrumented run: identical report, populated registry. Other
        // tests in this binary may run concurrently and also record into
        // the process-global registry, so assert presence, not totals.
        let baseline = ExplFrame::new(config(7)).run().expect("baseline");
        perf::enable();
        perf::reset();
        let mut observer = PerfObserver;
        let instrumented = ExplFrame::new(config(7))
            .run_traced(&mut observer)
            .expect("instrumented");
        let stats: std::collections::BTreeMap<_, _> = perf::snapshot().into_iter().collect();
        perf::disable();

        assert_eq!(
            instrumented, baseline,
            "perf instrumentation changed the run"
        );
        for key in [
            "phase.template",
            "phase.release",
            "phase.steer",
            "phase.hammer",
            "phase.collect",
            "phase.analyze",
        ] {
            let s = stats.get(key).unwrap_or_else(|| panic!("{key} missing"));
            assert!(s.calls > 0, "{key} recorded no scope entries");
        }
        // The collect phase reads ciphertexts through the machine, so its
        // op counter (machine reads+writes+hammer_pairs delta) is nonzero.
        assert!(stats["phase.collect"].ops > 0, "collect counted no ops");
        // The observer mapped work-carrying events onto `event.*` keys.
        assert!(stats["event.rows_hammered"].ops > 0);
        assert_eq!(
            stats["event.ciphertexts"].ops,
            baseline.ciphertexts_collected
        );
    }

    #[test]
    fn verify_key_checks_against_ground_truth() {
        let cfg = config(1);
        let mut machine = SimMachine::new(cfg.machine.clone());
        let pipe = Pipeline::new(&mut machine, cfg);
        let keys = pipe.victim_keys();
        assert!(pipe.verify_key(VictimCipherKind::AesSbox, &RecoveredKey::from_aes(keys.aes)));
        assert!(!pipe.verify_key(VictimCipherKind::AesSbox, &RecoveredKey::from_aes([0; 16])));
        assert!(pipe.verify_key(
            VictimCipherKind::Present,
            &RecoveredKey::from_present(keys.present)
        ));
        assert!(!pipe.verify_key(VictimCipherKind::Present, &RecoveredKey::from_aes(keys.aes)));
    }
}
