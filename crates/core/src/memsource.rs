//! A [`TableSource`] backed by simulated machine memory.

use ciphers::TableSource;
use machine::{MachineError, Pid, SimMachine, VirtAddr};

/// Reads cipher table bytes through a process's virtual memory on a
/// [`SimMachine`] — the glue that makes a Rowhammer flip in the victim's
/// page corrupt its encryptions.
///
/// # Exclusive-borrow contract
///
/// The source holds `&mut SimMachine` for its whole lifetime, not just
/// during [`read_u8`](TableSource::read_u8) calls. This is deliberate:
/// every table lookup is a *memory access* on the simulated machine
/// (advancing time, touching caches, hitting DRAM), and the
/// [`TableSource`] trait's `read_u8(&mut self, offset)` has no machine
/// parameter through which a narrower borrow could flow. Holding the
/// exclusive borrow guarantees nothing else can mutate machine state
/// between the lookups of one encryption — which is exactly the atomicity
/// a real in-process table read has.
///
/// Consequences for callers:
///
/// * construct one source per encryption call and let it drop immediately
///   after (see [`VictimCipherService::encrypt`](crate::VictimCipherService::encrypt));
/// * do not cache a source across machine operations — the borrow checker
///   will stop you, and that is the contract working as intended;
/// * reads outside the declared `len` are a bug in the cipher, not a
///   recoverable condition, and panic.
///
/// # Fault capture (DRAM-resident page tables)
///
/// On a shadow-translation machine a table read cannot fail while the
/// service holds its mapping. With page tables in DRAM, however, the
/// victim's *translation* is itself hammerable: a collateral flip in one of
/// its table frames can detach the table page mid-encryption (the
/// [`MachineError::Unmapped`] segfault analog) or send the walk outside the
/// device. The [`TableSource`] trait has no error channel, so the source
/// records the **first** such fault and returns `0` for that read and every
/// later one — the cipher finishes on garbage, exactly like a process
/// running between a corrupted load and its delayed crash. Callers must
/// check [`take_fault`](Self::take_fault) after the encryption and discard
/// the block if a fault fired.
#[derive(Debug)]
pub struct MachineTableSource<'m> {
    machine: &'m mut SimMachine,
    pid: Pid,
    base: VirtAddr,
    len: usize,
    fault: Option<MachineError>,
}

impl<'m> MachineTableSource<'m> {
    /// Creates a source reading `len` bytes starting at `base` in `pid`'s
    /// address space.
    pub fn new(machine: &'m mut SimMachine, pid: Pid, base: VirtAddr, len: usize) -> Self {
        MachineTableSource {
            machine,
            pid,
            base,
            len,
            fault: None,
        }
    }

    /// The first machine fault a table read hit, if any (reads after the
    /// first fault return `0` without touching the machine again).
    #[must_use]
    pub fn fault(&self) -> Option<&MachineError> {
        self.fault.as_ref()
    }

    /// Consumes the recorded fault, leaving the source clean.
    pub fn take_fault(&mut self) -> Option<MachineError> {
        self.fault.take()
    }
}

impl TableSource for MachineTableSource<'_> {
    fn read_u8(&mut self, offset: usize) -> u8 {
        assert!(
            offset < self.len,
            "table read at {offset} beyond image length {}",
            self.len
        );
        if self.fault.is_some() {
            return 0;
        }
        let mut byte = [0u8];
        match self
            .machine
            .read(self.pid, self.base + offset as u64, &mut byte)
        {
            Ok(()) => byte[0],
            Err(e) => {
                self.fault = Some(e);
                0
            }
        }
    }

    fn len(&mut self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::MachineConfig;
    use memsim::CpuId;

    #[test]
    fn reads_installed_bytes() {
        let mut m = SimMachine::new(MachineConfig::small(3));
        let pid = m.spawn(CpuId(0));
        let va = m.mmap(pid, 1).unwrap();
        m.write(pid, va, &[10, 20, 30]).unwrap();
        let mut src = MachineTableSource::new(&mut m, pid, va, 3);
        assert_eq!(src.read_u8(0), 10);
        assert_eq!(src.read_u8(2), 30);
        assert_eq!(src.len(), 3);
    }

    #[test]
    fn faulting_read_is_recorded_and_returns_zero() {
        let mut m = SimMachine::new(MachineConfig::small(3));
        let pid = m.spawn(CpuId(0));
        // No mapping at this address: every read is the segfault analog.
        let va = VirtAddr(0x40_0000);
        let mut src = MachineTableSource::new(&mut m, pid, va, 4);
        assert_eq!(src.read_u8(0), 0);
        assert!(matches!(src.fault(), Some(MachineError::Unmapped { .. })));
        // Later reads short-circuit on the sticky fault.
        assert_eq!(src.read_u8(3), 0);
        assert!(matches!(
            src.take_fault(),
            Some(MachineError::Unmapped { .. })
        ));
        assert_eq!(src.take_fault(), None);
    }

    #[test]
    #[should_panic(expected = "beyond image length")]
    fn out_of_image_read_panics() {
        let mut m = SimMachine::new(MachineConfig::small(3));
        let pid = m.spawn(CpuId(0));
        let va = m.mmap(pid, 1).unwrap();
        m.write(pid, va, &[0]).unwrap();
        let mut src = MachineTableSource::new(&mut m, pid, va, 1);
        src.read_u8(1);
    }
}
