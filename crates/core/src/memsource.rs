//! A [`TableSource`] backed by simulated machine memory.

use ciphers::TableSource;
use machine::{Pid, SimMachine, VirtAddr};

/// Reads cipher table bytes through a process's virtual memory on a
/// [`SimMachine`] — the glue that makes a Rowhammer flip in the victim's
/// page corrupt its encryptions.
///
/// # Exclusive-borrow contract
///
/// The source holds `&mut SimMachine` for its whole lifetime, not just
/// during [`read_u8`](TableSource::read_u8) calls. This is deliberate:
/// every table lookup is a *memory access* on the simulated machine
/// (advancing time, touching caches, hitting DRAM), and the
/// [`TableSource`] trait's `read_u8(&mut self, offset)` has no machine
/// parameter through which a narrower borrow could flow. Holding the
/// exclusive borrow guarantees nothing else can mutate machine state
/// between the lookups of one encryption — which is exactly the atomicity
/// a real in-process table read has.
///
/// Consequences for callers:
///
/// * construct one source per encryption call and let it drop immediately
///   after (see [`VictimCipherService::encrypt`](crate::VictimCipherService::encrypt));
/// * do not cache a source across machine operations — the borrow checker
///   will stop you, and that is the contract working as intended;
/// * reads outside the declared `len` are a bug in the cipher, not a
///   recoverable condition, and panic.
#[derive(Debug)]
pub struct MachineTableSource<'m> {
    machine: &'m mut SimMachine,
    pid: Pid,
    base: VirtAddr,
    len: usize,
}

impl<'m> MachineTableSource<'m> {
    /// Creates a source reading `len` bytes starting at `base` in `pid`'s
    /// address space.
    pub fn new(machine: &'m mut SimMachine, pid: Pid, base: VirtAddr, len: usize) -> Self {
        MachineTableSource {
            machine,
            pid,
            base,
            len,
        }
    }
}

impl TableSource for MachineTableSource<'_> {
    fn read_u8(&mut self, offset: usize) -> u8 {
        assert!(
            offset < self.len,
            "table read at {offset} beyond image length {}",
            self.len
        );
        let mut byte = [0u8];
        self.machine
            .read(self.pid, self.base + offset as u64, &mut byte)
            .expect("victim table page is mapped for the service lifetime");
        byte[0]
    }

    fn len(&mut self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::MachineConfig;
    use memsim::CpuId;

    #[test]
    fn reads_installed_bytes() {
        let mut m = SimMachine::new(MachineConfig::small(3));
        let pid = m.spawn(CpuId(0));
        let va = m.mmap(pid, 1).unwrap();
        m.write(pid, va, &[10, 20, 30]).unwrap();
        let mut src = MachineTableSource::new(&mut m, pid, va, 3);
        assert_eq!(src.read_u8(0), 10);
        assert_eq!(src.read_u8(2), 30);
        assert_eq!(src.len(), 3);
    }

    #[test]
    #[should_panic(expected = "beyond image length")]
    fn out_of_image_read_panics() {
        let mut m = SimMachine::new(MachineConfig::small(3));
        let pid = m.spawn(CpuId(0));
        let va = m.mmap(pid, 1).unwrap();
        m.write(pid, va, &[0]).unwrap();
        let mut src = MachineTableSource::new(&mut m, pid, va, 1);
        src.read_u8(1);
    }
}
