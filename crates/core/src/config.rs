//! Attack configuration.

use machine::MachineConfig;
use memsim::CpuId;

/// Which cipher implementation the victim runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VictimCipherKind {
    /// AES-128 with a 256-byte in-memory S-box (the PFA paper's shape).
    #[default]
    AesSbox,
    /// AES-128 with the 4 KiB `Te0..Te3` page (the ExplFrame title shape).
    AesTtable,
    /// PRESENT-80 with a 16-byte in-memory S-box.
    Present,
}

impl VictimCipherKind {
    /// Byte length of the table image the victim installs at page start.
    pub const fn image_len(self) -> usize {
        match self {
            VictimCipherKind::AesSbox => 256,
            VictimCipherKind::AesTtable => 4096,
            VictimCipherKind::Present => 16,
        }
    }

    /// Kebab-case label (for traces, tables, and cell names).
    pub const fn label(self) -> &'static str {
        match self {
            VictimCipherKind::AesSbox => "aes-sbox",
            VictimCipherKind::AesTtable => "aes-ttable",
            VictimCipherKind::Present => "present",
        }
    }
}

/// How the attacker activates aggressor rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HammerStrategy {
    /// Classic double-sided hammering: alternate the two rows sandwiching
    /// the victim. Strongest per activation, but a sampling
    /// Target-Row-Refresh tracker catches both aggressors easily.
    #[default]
    DoubleSided,
    /// Many-sided (TRRespass-style) hammering: round-robin over the two
    /// sandwiching rows plus same-bank decoy rows fanned outwards. Each
    /// round still delivers full double-sided disturbance to the victim,
    /// while the decoys thrash any sampler smaller than `rows` entries.
    ManySided {
        /// Total distinct aggressor rows per round (≥ 2; the decoys are
        /// `rows - 2`).
        rows: u32,
    },
}

impl HammerStrategy {
    /// Kebab-case label (for traces and tables).
    pub const fn label(self) -> &'static str {
        match self {
            HammerStrategy::DoubleSided => "double-sided",
            HammerStrategy::ManySided { .. } => "many-sided",
        }
    }

    /// Distinct aggressor rows activated per round.
    pub const fn rows(self) -> u32 {
        match self {
            HammerStrategy::DoubleSided => 2,
            HammerStrategy::ManySided { rows } => rows,
        }
    }
}

/// Full configuration of an [`crate::ExplFrame`] run.
///
/// # Examples
///
/// ```
/// use explframe_core::ExplFrameConfig;
/// let cfg = ExplFrameConfig::small_demo(7).with_template_pages(2048);
/// assert_eq!(cfg.template_pages, 2048);
/// ```
///
/// A countermeasure-aware attacker against a hardened machine (see
/// [`ExplFrame::run_adaptive`](crate::ExplFrame::run_adaptive)):
///
/// ```
/// use dram::{EccMode, TrrParams};
/// use explframe_core::ExplFrameConfig;
///
/// let mut cfg = ExplFrameConfig::small_demo(1)
///     .with_many_sided_rows(8)
///     .with_ecc_aware(true);
/// cfg.machine.dram = cfg
///     .machine
///     .dram
///     .with_trr(Some(TrrParams::ddr4_like()))
///     .with_ecc(EccMode::Secded);
/// assert!(cfg.ecc_aware);
/// ```
#[derive(Debug, Clone)]
pub struct ExplFrameConfig {
    /// The machine to attack (DRAM seed determines the weak-cell map).
    pub machine: MachineConfig,
    /// RNG seed for attacker choices (plaintexts, template order).
    pub seed: u64,
    /// CPU the attacker pins itself to.
    pub attacker_cpu: CpuId,
    /// CPU the victim runs on (the attack requires equality; experiments
    /// vary it to reproduce the paper's same-CPU condition).
    pub victim_cpu: CpuId,
    /// Attacker buffer size in pages for the templating sweep.
    pub template_pages: u64,
    /// Aggressor pairs per double-sided hammer during templating.
    pub hammer_pairs: u64,
    /// Aggressor pairs when re-hammering the steered victim page.
    pub rehammer_pairs: u64,
    /// Re-hammer rounds used to score template reproducibility.
    pub reproducibility_rounds: u32,
    /// Victim cipher shape.
    pub victim: VictimCipherKind,
    /// Ciphertext budget per fault before giving up.
    pub max_ciphertexts: u64,
    /// Maximum steering (fault) rounds — T-table recovery needs several.
    pub max_fault_rounds: u32,
    /// Hammering strategy the pipeline starts with.
    pub strategy: HammerStrategy,
    /// Aggressor rows per round after the adaptive driver escalates to
    /// many-sided hammering (must exceed the TRR sampler size to bypass
    /// it).
    pub many_sided_rows: u32,
    /// ECC-aware fault collection: probe the machine's corrected-error
    /// telemetry (the EDAC counters every Linux box exposes) before
    /// spending the ciphertext budget, and discard rounds whose fault the
    /// DIMM silently corrected.
    pub ecc_aware: bool,
    /// Run the latency-based mapping probe (DRAMA-style row-conflict
    /// timing) before templating, recovering the controller's bank mapping
    /// from access latencies instead of assuming it.
    pub probe_mapping: bool,
}

impl ExplFrameConfig {
    /// A fast demonstration setup: 256 MiB flippy machine, 16 MiB template
    /// buffer, S-box AES victim.
    pub fn small_demo(seed: u64) -> Self {
        ExplFrameConfig {
            machine: MachineConfig::small(seed),
            seed,
            attacker_cpu: CpuId(0),
            victim_cpu: CpuId(0),
            template_pages: 4096, // 16 MiB
            hammer_pairs: 400_000,
            rehammer_pairs: 400_000,
            reproducibility_rounds: 3,
            victim: VictimCipherKind::AesSbox,
            max_ciphertexts: 60_000,
            max_fault_rounds: 8,
            strategy: HammerStrategy::DoubleSided,
            many_sided_rows: 8,
            ecc_aware: false,
            probe_mapping: false,
        }
    }

    /// Paper-scale setup: 1 GiB moderate machine, 256 MiB template buffer.
    pub fn paper_scale(seed: u64) -> Self {
        ExplFrameConfig {
            machine: MachineConfig::medium(seed),
            template_pages: 65_536, // 256 MiB
            ..Self::small_demo(seed)
        }
    }

    /// Returns a copy with a different machine configuration.
    #[must_use]
    pub fn with_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Returns a copy with a different attacker RNG seed (the machine's
    /// weak-cell seed is part of [`Self::machine`] and is *not* changed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the attacker pinned to `cpu`.
    #[must_use]
    pub fn with_attacker_cpu(mut self, cpu: CpuId) -> Self {
        self.attacker_cpu = cpu;
        self
    }

    /// Returns a copy with a different victim cipher.
    #[must_use]
    pub fn with_victim(mut self, victim: VictimCipherKind) -> Self {
        self.victim = victim;
        self
    }

    /// Returns a copy with a different template buffer size (pages).
    #[must_use]
    pub fn with_template_pages(mut self, pages: u64) -> Self {
        self.template_pages = pages;
        self
    }

    /// Returns a copy with the victim pinned to `cpu`.
    #[must_use]
    pub fn with_victim_cpu(mut self, cpu: CpuId) -> Self {
        self.victim_cpu = cpu;
        self
    }

    /// Returns a copy with a different hammer intensity (sets both the
    /// templating and re-hammer pair counts; use
    /// [`Self::with_rehammer_pairs`] to change only the latter).
    #[must_use]
    pub fn with_hammer_pairs(mut self, pairs: u64) -> Self {
        self.hammer_pairs = pairs;
        self.rehammer_pairs = pairs;
        self
    }

    /// Returns a copy with a different re-hammer intensity (the pairs spent
    /// per fault round on the steered frame's aggressors).
    #[must_use]
    pub fn with_rehammer_pairs(mut self, pairs: u64) -> Self {
        self.rehammer_pairs = pairs;
        self
    }

    /// Returns a copy with a different reproducibility-scoring round count.
    #[must_use]
    pub fn with_reproducibility_rounds(mut self, rounds: u32) -> Self {
        self.reproducibility_rounds = rounds;
        self
    }

    /// Returns a copy with a different per-fault ciphertext budget.
    #[must_use]
    pub fn with_max_ciphertexts(mut self, max: u64) -> Self {
        self.max_ciphertexts = max;
        self
    }

    /// Returns a copy with a different fault-round budget.
    #[must_use]
    pub fn with_max_fault_rounds(mut self, rounds: u32) -> Self {
        self.max_fault_rounds = rounds;
        self
    }

    /// Returns a copy with a different starting hammer strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: HammerStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with a different many-sided escalation width.
    #[must_use]
    pub fn with_many_sided_rows(mut self, rows: u32) -> Self {
        self.many_sided_rows = rows;
        self
    }

    /// Returns a copy with ECC-aware fault collection enabled or disabled.
    #[must_use]
    pub fn with_ecc_aware(mut self, aware: bool) -> Self {
        self.ecc_aware = aware;
        self
    }

    /// Returns a copy with the latency-based mapping probe enabled or
    /// disabled.
    #[must_use]
    pub fn with_probe_mapping(mut self, probe: bool) -> Self {
        self.probe_mapping = probe;
        self
    }

    /// Returns a copy with DRAM-resident page tables switched on or off
    /// (forwards to [`MachineConfig::with_dram_page_tables`]). On, every
    /// translation in the attack walks live PTE bytes in hammerable DRAM:
    /// table-walk traffic perturbs caches and TRR sampling, victim spawn
    /// and first touch consume extra page-frame-cache entries for table
    /// frames (which steering must account for), and `Unmapped` segfault
    /// analogs become reachable mid-phase. Off (the default), translation
    /// comes free from the shadow pagemap and reports are byte-identical
    /// to the pre-walk-mode pipeline.
    #[must_use]
    pub fn with_dram_page_tables(mut self, on: bool) -> Self {
        self.machine = self.machine.with_dram_page_tables(on);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let cfg = ExplFrameConfig::small_demo(1)
            .with_victim(VictimCipherKind::Present)
            .with_victim_cpu(CpuId(2))
            .with_hammer_pairs(123);
        assert_eq!(cfg.victim, VictimCipherKind::Present);
        assert_eq!(cfg.victim_cpu, CpuId(2));
        assert_eq!(cfg.hammer_pairs, 123);
        assert_eq!(cfg.rehammer_pairs, 123);
    }

    #[test]
    fn every_field_is_settable_fluently() {
        let machine = MachineConfig::small(77);
        let cfg = ExplFrameConfig::small_demo(1)
            .with_machine(machine.clone())
            .with_seed(99)
            .with_attacker_cpu(CpuId(3))
            .with_victim_cpu(CpuId(1))
            .with_victim(VictimCipherKind::AesTtable)
            .with_template_pages(512)
            .with_hammer_pairs(1000)
            .with_rehammer_pairs(2000)
            .with_reproducibility_rounds(5)
            .with_max_ciphertexts(9999)
            .with_max_fault_rounds(3)
            .with_strategy(HammerStrategy::ManySided { rows: 6 })
            .with_many_sided_rows(12)
            .with_ecc_aware(true)
            .with_probe_mapping(true)
            .with_dram_page_tables(true);
        assert_eq!(cfg.machine.dram.seed, machine.dram.seed);
        assert!(cfg.machine.dram_page_tables);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.attacker_cpu, CpuId(3));
        assert_eq!(cfg.victim_cpu, CpuId(1));
        assert_eq!(cfg.victim, VictimCipherKind::AesTtable);
        assert_eq!(cfg.template_pages, 512);
        assert_eq!(cfg.hammer_pairs, 1000);
        assert_eq!(cfg.rehammer_pairs, 2000);
        assert_eq!(cfg.reproducibility_rounds, 5);
        assert_eq!(cfg.max_ciphertexts, 9999);
        assert_eq!(cfg.max_fault_rounds, 3);
        assert_eq!(cfg.strategy, HammerStrategy::ManySided { rows: 6 });
        assert_eq!(cfg.many_sided_rows, 12);
        assert!(cfg.ecc_aware);
        assert!(cfg.probe_mapping);
    }

    #[test]
    fn labels_are_kebab_case() {
        assert_eq!(VictimCipherKind::AesSbox.label(), "aes-sbox");
        assert_eq!(VictimCipherKind::AesTtable.label(), "aes-ttable");
        assert_eq!(VictimCipherKind::Present.label(), "present");
        assert_eq!(HammerStrategy::DoubleSided.label(), "double-sided");
        assert_eq!(HammerStrategy::ManySided { rows: 8 }.label(), "many-sided");
    }

    #[test]
    fn strategy_row_counts() {
        assert_eq!(HammerStrategy::DoubleSided.rows(), 2);
        assert_eq!(HammerStrategy::ManySided { rows: 10 }.rows(), 10);
        assert_eq!(HammerStrategy::default(), HammerStrategy::DoubleSided);
    }

    #[test]
    fn image_lengths() {
        assert_eq!(VictimCipherKind::AesSbox.image_len(), 256);
        assert_eq!(VictimCipherKind::AesTtable.image_len(), 4096);
        assert_eq!(VictimCipherKind::Present.image_len(), 16);
    }
}
