//! # `explframe-core` — the ExplFrame attack
//!
//! Reproduction of the attack from *"ExplFrame: Exploiting Page Frame Cache
//! for Fault Analysis of Block Ciphers"* (DATE 2020) on the fully simulated
//! substrate built by the `dram`, `cachesim`, `memsim` and `machine` crates.
//!
//! The attack is five first-class phases (paper §V–§VI), each a [`Phase`]
//! consuming and producing typed artifacts:
//!
//! 1. **Template** ([`TemplatePhase`] → [`TemplatePool`]) — hammer the
//!    attacker's own large buffer, read it back, and build a map of
//!    repeatable bit flips ([`FlipTemplate`]). Unprivileged: no pagemap,
//!    no oracles.
//! 2. **Release** ([`ReleasePhase`] → [`ReleasedFrame`]) — `munmap` one
//!    vulnerable page. The freed frame lands at the *head* of this CPU's
//!    per-CPU page frame cache. The attacker stays active; sleeping would
//!    let the idle kernel drain the cache (§V).
//! 3. **Steer** ([`SteerPhase`] → [`SteeredVictim`]) — the victim's next
//!    small allocation on the same CPU pops exactly that frame: its cipher
//!    tables now live in memory the attacker knows how to flip.
//! 4. **Hammer** ([`HammerPhase`]) — re-hammer the retained aggressor rows;
//!    the templated bit flips inside the victim's table.
//! 5. **Collect & analyze** ([`CollectPhase`] → [`FaultedCiphertexts`],
//!    [`AnalyzePhase`] → [`RecoveredKey`]) — query encryptions and run
//!    Persistent Fault Analysis (or its T-table/PRESENT variants) from the
//!    `fault` crate until the key is out.
//!
//! [`Pipeline`] composes phases in any order over one machine, RNG, and
//! [`Observer`] (which receives structured [`PhaseEvent`]s — collect them
//! with [`TraceCollector`] and persist via `campaign`'s `TraceSink` into
//! `results/trace.json`). [`ExplFrame`] is the standard five-phase
//! composition; [`run_spray_baseline`] shares the templating phase and
//! models the untargeted prior-work comparison.
//!
//! # Examples
//!
//! ```no_run
//! use explframe_core::{ExplFrame, ExplFrameConfig};
//!
//! let report = ExplFrame::new(ExplFrameConfig::small_demo(1)).run()?;
//! println!(
//!     "templates={} steered={} ciphertexts={} key={:02x?}",
//!     report.templates_found,
//!     report.steering_successes,
//!     report.ciphertexts_collected,
//!     report.recovered_aes_key,
//! );
//! # Ok::<(), explframe_core::AttackError>(())
//! ```
//!
//! Custom compositions the monolithic driver could not express (template
//! once, steer many victims; mixed-cipher multi-victim) are a few lines
//! over the same phases — see [`Pipeline`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod baseline;
mod config;
mod error;
mod events;
mod memsource;
mod noise;
mod phase;
mod pipeline;
mod ptflip;
mod template;
mod victim;

pub use attack::{AttackOutcome, AttackReport, ExplFrame};
pub use baseline::{run_spray_baseline, SprayReport};
pub use config::{ExplFrameConfig, HammerStrategy, VictimCipherKind};
pub use error::AttackError;
pub use events::{NullObserver, Observer, PerfObserver, PhaseEvent, TraceCollector};
pub use memsource::MachineTableSource;
pub use noise::NoiseProcess;
pub use phase::{
    select_attack_pages, template_usable, AnalyzePhase, CollectOutcome, CollectPhase, Counters,
    FaultedCiphertexts, HammerPhase, MappingProbePhase, Phase, PhaseCtx, RecoveredKey,
    RecoveredMapping, ReleasePhase, ReleasedFrame, SteerPhase, SteeredVictim, TemplatePhase,
    TemplatePool,
};
pub use pipeline::Pipeline;
pub use ptflip::{pte_flip_escalation, PtFlipConfig, PtFlipOutcome};
pub use template::{template_scan, template_scan_with, FlipTemplate, TemplateMemo, TemplateScan};
pub use victim::{VictimCipherService, VictimKeys};
