//! The spray baseline: Rowhammer *without* page-frame-cache steering.
//!
//! This is the prior-work comparison the paper's introduction draws: an
//! unprivileged attacker who cannot target a specific frame sprays — they
//! template a large buffer, release all of it, and hope the victim's
//! sensitive page lands on one of the vulnerable frames, then re-hammer
//! every known aggressor pair. Success is a lottery over the vulnerable
//! frame density; ExplFrame turns the same primitives into a targeted,
//! single-page attack.
//!
//! Implemented as a composition over the same [`Pipeline`] phases as the
//! real attack: the templating phase is shared verbatim; only the
//! spray-specific moves (release *everything*, allocator noise, hammer
//! *every* templated pair) live here.

use machine::SimMachine;
use memsim::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ExplFrameConfig;
use crate::error::AttackError;
use crate::noise::NoiseProcess;
use crate::pipeline::Pipeline;
use crate::victim::VictimCipherService;

/// Salt mixed into the configuration seed for the sprayer's RNG (matches
/// the pre-pipeline baseline, keeping reports byte-identical per seed).
const SPRAY_RNG_SALT: u64 = 0x5924A;

/// Result of one spray-baseline run.
#[must_use = "a spray report carries the baseline measurements"]
#[derive(Debug, Clone, PartialEq)]
pub struct SprayReport {
    /// Templates found during the sweep.
    pub templates_found: usize,
    /// Whether the victim's table page landed on *any* templated frame.
    pub victim_on_vulnerable_frame: bool,
    /// Whether re-hammering corrupted the victim's table image (checked
    /// against the pristine image through the DRAM oracle).
    pub fault_landed: bool,
    /// Aggressor pairs hammered during the spray phase.
    pub spray_pairs: u64,
}

/// Runs the spray baseline once. Shares the [`Pipeline`] templating phase
/// with [`crate::ExplFrame`], then diverges: the whole buffer is released
/// and allocator noise runs between release and victim arrival, so the
/// victim's frame is effectively arbitrary.
///
/// # Errors
///
/// Returns [`AttackError::Machine`] for substrate failures.
pub fn run_spray_baseline(
    config: &ExplFrameConfig,
    machine: &mut SimMachine,
    noise_bursts: u32,
) -> Result<SprayReport, AttackError> {
    let rng = StdRng::seed_from_u64(config.seed ^ SPRAY_RNG_SALT);
    let mut pipe = Pipeline::with_rng(machine, config.clone(), rng);

    // Phase 1 (shared with the targeted attack): template the buffer.
    let pool = pipe.template()?;

    // Record the templated frames while still mapped (the sprayer knows its
    // own templates' aggressors; frame identity below is oracle-only and
    // used purely for reporting).
    let vulnerable_frames: Vec<u64> = {
        let (machine, _) = pipe.split();
        pool.scan
            .templates
            .iter()
            .filter_map(|t| machine.translate(pool.attacker, t.page_va))
            .map(|pa| pa.as_u64() / PAGE_SIZE)
            .collect()
    };

    // Release everything — the sprayer cannot keep the frames and steer.
    pipe.release_all(&pool)?;

    // Allocator churn between release and the victim's arrival.
    {
        let (machine, rng) = pipe.split();
        let mut noise = NoiseProcess::spawn(machine, config.victim_cpu);
        for _ in 0..noise_bursts {
            noise.burst(machine, rng, 64)?;
        }
    }

    let victim = pipe.spawn_victim(config.victim)?;
    let (machine, rng) = pipe.split();
    let victim_frame = victim.table_pfn(machine).map(|p| p.0);
    let on_vulnerable = victim_frame.is_some_and(|f| vulnerable_frames.contains(&f));

    // Spray: re-hammer every templated aggressor pair. The aggressor pages
    // were released too, so the sprayer re-maps a buffer and hammers the
    // same *virtual* offsets — on real hardware the re-mapped buffer rarely
    // reclaims the same frames, which is exactly why spraying needs the
    // victim to sit inside the hammered physical neighbourhood. We model
    // the strongest reasonable sprayer: aggressor rows re-acquired where
    // the allocator happens to return them.
    let spray_buffer = machine.mmap(pool.attacker, config.template_pages)?;
    machine.fill(
        pool.attacker,
        spray_buffer,
        config.template_pages * PAGE_SIZE,
        0xFF,
    )?;
    let mut spray_pairs = 0u64;
    for t in &pool.scan.templates {
        let above = spray_buffer + (t.aggressor_above.0 - pool.buffer.0);
        let below = spray_buffer + (t.aggressor_below.0 - pool.buffer.0);
        if machine
            .hammer_pair_virt(pool.attacker, above, below, config.rehammer_pairs)
            .is_ok()
        {
            spray_pairs += config.rehammer_pairs;
        }
    }

    // Oracle check: did the victim's table image get corrupted?
    let fault_landed = table_image_corrupted(machine, &victim, config)?;
    victim.stop(machine)?;
    let _ = rng.gen::<u8>();

    Ok(SprayReport {
        templates_found: pool.scan.templates.len(),
        victim_on_vulnerable_frame: on_vulnerable,
        fault_landed,
        spray_pairs,
    })
}

/// Compares the victim's in-DRAM table image with the pristine one.
fn table_image_corrupted(
    machine: &mut SimMachine,
    victim: &VictimCipherService,
    config: &ExplFrameConfig,
) -> Result<bool, AttackError> {
    use crate::config::VictimCipherKind;
    use ciphers::{present_sbox_image, TableImage};
    let pristine = match config.victim {
        VictimCipherKind::AesSbox => TableImage::sbox().to_vec(),
        VictimCipherKind::AesTtable => TableImage::te_tables(),
        VictimCipherKind::Present => present_sbox_image().to_vec(),
    };
    let Some(pa) = machine.translate(victim.pid(), victim.table_base()) else {
        return Ok(false);
    };
    let mut current = vec![0u8; pristine.len()];
    machine.dram_mut().read(pa, &mut current);
    Ok(current != pristine)
}
