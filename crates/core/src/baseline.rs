//! The spray baseline: Rowhammer *without* page-frame-cache steering.
//!
//! This is the prior-work comparison the paper's introduction draws: an
//! unprivileged attacker who cannot target a specific frame sprays — they
//! template a large buffer, release all of it, and hope the victim's
//! sensitive page lands on one of the vulnerable frames, then re-hammer
//! every known aggressor pair. Success is a lottery over the vulnerable
//! frame density; ExplFrame turns the same primitives into a targeted,
//! single-page attack.

use machine::SimMachine;
use memsim::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::ExplFrameConfig;
use crate::error::AttackError;
use crate::noise::NoiseProcess;
use crate::template::template_scan;
use crate::victim::{VictimCipherService, VictimKeys};

/// Result of one spray-baseline run.
#[must_use = "a spray report carries the baseline measurements"]
#[derive(Debug, Clone, PartialEq)]
pub struct SprayReport {
    /// Templates found during the sweep.
    pub templates_found: usize,
    /// Whether the victim's table page landed on *any* templated frame.
    pub victim_on_vulnerable_frame: bool,
    /// Whether re-hammering corrupted the victim's table image (checked
    /// against the pristine image through the DRAM oracle).
    pub fault_landed: bool,
    /// Aggressor pairs hammered during the spray phase.
    pub spray_pairs: u64,
}

/// Runs the spray baseline once. Mirrors [`crate::ExplFrame`]'s phases but
/// with the whole buffer released and allocator noise between release and
/// victim arrival, so the victim's frame is effectively arbitrary.
///
/// # Errors
///
/// Returns [`AttackError::Machine`] for substrate failures.
pub fn run_spray_baseline(
    config: &ExplFrameConfig,
    machine: &mut SimMachine,
    noise_bursts: u32,
) -> Result<SprayReport, AttackError> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5924A);
    let attacker = machine.spawn(config.attacker_cpu);
    let buffer = machine.mmap(attacker, config.template_pages)?;
    let scan = template_scan(
        machine,
        attacker,
        buffer,
        config.template_pages,
        config.hammer_pairs,
        config.reproducibility_rounds,
    )?;

    // Record the templated frames while still mapped (the sprayer knows its
    // own templates' aggressors; frame identity below is oracle-only and
    // used purely for reporting).
    let vulnerable_frames: Vec<u64> = scan
        .templates
        .iter()
        .filter_map(|t| machine.translate(attacker, t.page_va))
        .map(|pa| pa.as_u64() / PAGE_SIZE)
        .collect();

    // Release everything — the sprayer cannot keep the frames and steer.
    machine.munmap(attacker, buffer, config.template_pages)?;

    // Allocator churn between release and the victim's arrival.
    let mut noise = NoiseProcess::spawn(machine, config.victim_cpu);
    for _ in 0..noise_bursts {
        noise.burst(machine, &mut rng, 64)?;
    }

    let victim = VictimCipherService::start(
        machine,
        config.victim_cpu,
        config.victim,
        VictimKeys::from_seed(config.seed),
    )?;
    let victim_frame = victim.table_pfn(machine).map(|p| p.0);
    let on_vulnerable = victim_frame.is_some_and(|f| vulnerable_frames.contains(&f));

    // Spray: re-hammer every templated aggressor pair. The aggressor pages
    // were released too, so the sprayer re-maps a buffer and hammers the
    // same *virtual* offsets — on real hardware the re-mapped buffer rarely
    // reclaims the same frames, which is exactly why spraying needs the
    // victim to sit inside the hammered physical neighbourhood. We model
    // the strongest reasonable sprayer: aggressor rows re-acquired where
    // the allocator happens to return them.
    let spray_buffer = machine.mmap(attacker, config.template_pages)?;
    machine.fill(
        attacker,
        spray_buffer,
        config.template_pages * PAGE_SIZE,
        0xFF,
    )?;
    let mut spray_pairs = 0u64;
    let mut failures = 0u64;
    for t in &scan.templates {
        let above = spray_buffer + (t.aggressor_above.0 - buffer.0);
        let below = spray_buffer + (t.aggressor_below.0 - buffer.0);
        match machine.hammer_pair_virt(attacker, above, below, config.rehammer_pairs) {
            Ok(_) => spray_pairs += config.rehammer_pairs,
            Err(_) => failures += 1,
        }
    }
    let _ = failures;

    // Oracle check: did the victim's table image get corrupted?
    let fault_landed = table_image_corrupted(machine, &victim, config)?;
    victim.stop(machine)?;
    let _ = rng.gen::<u8>();

    Ok(SprayReport {
        templates_found: scan.templates.len(),
        victim_on_vulnerable_frame: on_vulnerable,
        fault_landed,
        spray_pairs,
    })
}

/// Compares the victim's in-DRAM table image with the pristine one.
fn table_image_corrupted(
    machine: &mut SimMachine,
    victim: &VictimCipherService,
    config: &ExplFrameConfig,
) -> Result<bool, AttackError> {
    use crate::config::VictimCipherKind;
    use ciphers::{present_sbox_image, TableImage};
    let pristine = match config.victim {
        VictimCipherKind::AesSbox => TableImage::sbox().to_vec(),
        VictimCipherKind::AesTtable => TableImage::te_tables(),
        VictimCipherKind::Present => present_sbox_image().to_vec(),
    };
    let Some(pa) = machine.translate(victim.pid(), machine_base(victim)) else {
        return Ok(false);
    };
    let mut current = vec![0u8; pristine.len()];
    machine.dram_mut().read(pa, &mut current);
    Ok(current != pristine)
}

/// The victim service's table base address (its only mapping).
fn machine_base(victim: &VictimCipherService) -> machine::VirtAddr {
    victim.table_base()
}
