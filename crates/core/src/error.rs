//! Attack-level errors.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the attack pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// An underlying machine operation failed.
    Machine(machine::MachineError),
    /// Templating found no (usable) flip templates — the module is too
    /// healthy, the buffer too small, or the hammer count too low.
    NoUsableTemplates {
        /// Templates found before filtering.
        found: usize,
    },
    /// The released frame was not picked up by the victim within the
    /// configured attempts (noise consumed the page frame cache entry).
    SteeringFailed {
        /// Attempts made.
        attempts: u32,
    },
    /// Re-hammering did not produce a detectable fault in the victim's
    /// table (data pattern mismatch or refresh won the race).
    FaultNotLanded,
    /// Ciphertext collection exhausted its budget before the statistics
    /// converged.
    CollectionExhausted {
        /// Ciphertexts consumed.
        collected: u64,
    },
    /// The analysis completed but produced no key.
    AnalysisFailed,
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Machine(e) => write!(f, "machine operation failed: {e}"),
            AttackError::NoUsableTemplates { found } => {
                write!(
                    f,
                    "no usable flip templates (found {found} before filtering)"
                )
            }
            AttackError::SteeringFailed { attempts } => {
                write!(
                    f,
                    "victim did not receive the released frame after {attempts} attempts"
                )
            }
            AttackError::FaultNotLanded => {
                write!(
                    f,
                    "re-hammering induced no detectable fault in the victim table"
                )
            }
            AttackError::CollectionExhausted { collected } => {
                write!(
                    f,
                    "fault statistics did not converge after {collected} ciphertexts"
                )
            }
            AttackError::AnalysisFailed => write!(f, "fault analysis produced no key"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<machine::MachineError> for AttackError {
    fn from(e: machine::MachineError) -> Self {
        AttackError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<AttackError>();
    }

    #[test]
    fn messages_are_specific() {
        assert!(AttackError::FaultNotLanded
            .to_string()
            .contains("re-hammering"));
        assert!(AttackError::NoUsableTemplates { found: 3 }
            .to_string()
            .contains('3'));
    }
}
