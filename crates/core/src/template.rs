//! DRAM templating: profiling the attacker's own memory for repeatable
//! bit flips (paper §VI, first phase).
//!
//! The attacker allocates a large buffer, fills it with a test pattern, and
//! double-side hammers every row, reading the buffer back to find flipped
//! bits. No privileged interface is used: flips are *observed in the
//! attacker's own data*, and aggressor selection relies only on the DIMM
//! geometry (recoverable on real hardware with DRAMA-style timing analysis;
//! here taken from the machine configuration).

use dram::{DramGeometry, Nanos};
use machine::{MachineError, MachineSnapshot, Pid, SimMachine, VirtAddr};
use memsim::{CpuId, PAGE_SIZE};

use crate::config::{ExplFrameConfig, HammerStrategy};
use crate::phase::TemplatePool;

/// Pages separating two consecutive rows of one bank in the physical
/// address space — banks, ranks and channels all interleave below the row
/// bits, so the stride is one row-width per bank in the system. This is
/// the aggressor-row stride within a physically contiguous buffer, shared
/// by the templating sweep and the re-hammer phase so the two can never
/// disagree about where decoy rows live.
pub(crate) fn same_bank_stride_pages(geometry: &DramGeometry) -> u64 {
    let row_pages = (u64::from(geometry.row_bytes) / PAGE_SIZE).max(1);
    row_pages * geometry.total_banks()
}

/// One templated flip: a repeatable bit corruption the attacker can
/// re-trigger on demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipTemplate {
    /// Page index within the attacker's template buffer.
    pub page_index: u64,
    /// Base virtual address of the vulnerable page (attacker space).
    pub page_va: VirtAddr,
    /// Byte offset of the flip within the page.
    pub page_offset: u16,
    /// Bit within the byte (0 = LSB).
    pub bit: u8,
    /// `true` if the flip discharges a 1 to 0 (true cell); `false` for a
    /// 0 → 1 flip (anti cell).
    pub one_to_zero: bool,
    /// Virtual address of the lower aggressor row (stays mapped).
    pub aggressor_above: VirtAddr,
    /// Virtual address of the upper aggressor row (stays mapped).
    pub aggressor_below: VirtAddr,
    /// Fraction of re-hammer rounds that reproduced the flip.
    pub reproducibility: f32,
}

impl FlipTemplate {
    /// The bit value the victim's data must hold at this location for the
    /// flip to trigger.
    pub const fn required_bit_value(&self) -> bool {
        self.one_to_zero
    }
}

/// Result of a templating sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TemplateScan {
    /// Deduplicated templates, in discovery order.
    pub templates: Vec<FlipTemplate>,
    /// Aggressor pairs hammered.
    pub rows_hammered: u64,
    /// Hammer attempts rejected (aggressors not in one bank — buffer
    /// fragmentation).
    pub hammer_failures: u64,
    /// Simulated time consumed by the sweep.
    pub elapsed: Nanos,
}

/// The same-bank aggressor-row set a [`HammerStrategy`] hammers around one
/// victim: the sandwiching pair, plus (for many-sided) decoy rows fanned
/// outwards at `stride_pages` while they stay inside the buffer.
pub(crate) fn strategy_aggressors(
    strategy: HammerStrategy,
    base: VirtAddr,
    pages: u64,
    above: VirtAddr,
    below: VirtAddr,
    stride_pages: u64,
) -> Vec<VirtAddr> {
    let mut rows = vec![above, below];
    let HammerStrategy::ManySided { rows: want } = strategy else {
        return rows;
    };
    let stride = stride_pages * PAGE_SIZE;
    let end = base.0 + pages * PAGE_SIZE;
    let mut k = 1u64;
    while (rows.len() as u32) < want {
        let lower = above.0.checked_sub(k * stride).filter(|&a| a >= base.0);
        let upper = Some(below.0 + k * stride).filter(|&a| a < end);
        if lower.is_none() && upper.is_none() {
            break; // buffer exhausted on both sides
        }
        if let Some(a) = lower {
            rows.push(VirtAddr(a));
        }
        if let Some(a) = upper {
            if (rows.len() as u32) < want {
                rows.push(VirtAddr(a));
            }
        }
        k += 1;
    }
    rows
}

/// Hammers the strategy's aggressor set around (`above`, `below`) with
/// `pairs` rounds, returning whether the primitive accepted the rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn strategy_hammer(
    machine: &mut SimMachine,
    pid: Pid,
    strategy: HammerStrategy,
    base: VirtAddr,
    pages: u64,
    above: VirtAddr,
    below: VirtAddr,
    stride_pages: u64,
    pairs: u64,
) -> Result<bool, MachineError> {
    let result = match strategy {
        HammerStrategy::DoubleSided => machine.hammer_pair_virt(pid, above, below, pairs),
        HammerStrategy::ManySided { .. } => {
            let rows = strategy_aggressors(strategy, base, pages, above, below, stride_pages);
            machine.hammer_rows_virt(pid, &rows, pairs)
        }
    };
    match result {
        Ok(_) => Ok(true),
        Err(MachineError::Dram(_)) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Runs the templating sweep over `pages` pages at `base` in `pid`'s
/// address space, double-sided (the paper's sweep).
///
/// Two passes are made (fill `0xFF` to expose true cells, `0x00` for anti
/// cells). After the sweep the buffer is left filled with zeroes and every
/// discovered template has been reproduced `repro_rounds` times to score
/// its reliability.
///
/// # Errors
///
/// Propagates machine errors (unmapped buffer, OOM on first touch).
pub fn template_scan(
    machine: &mut SimMachine,
    pid: Pid,
    base: VirtAddr,
    pages: u64,
    hammer_pairs: u64,
    repro_rounds: u32,
) -> Result<TemplateScan, MachineError> {
    template_scan_with(
        machine,
        pid,
        base,
        pages,
        hammer_pairs,
        repro_rounds,
        HammerStrategy::DoubleSided,
    )
}

/// [`template_scan`] with an explicit [`HammerStrategy`] — a
/// countermeasure-aware attacker re-sweeps many-sided when the
/// double-sided sweep comes back empty on a TRR-protected module.
///
/// # Errors
///
/// Propagates machine errors (unmapped buffer, OOM on first touch).
pub fn template_scan_with(
    machine: &mut SimMachine,
    pid: Pid,
    base: VirtAddr,
    pages: u64,
    hammer_pairs: u64,
    repro_rounds: u32,
    strategy: HammerStrategy,
) -> Result<TemplateScan, MachineError> {
    let start_time = machine.now();
    let geometry = machine.config().dram.geometry;
    let row_pages = (geometry.row_bytes as u64 / PAGE_SIZE).max(1);
    let stride_pages = same_bank_stride_pages(&geometry);

    let mut scan = TemplateScan::default();
    if pages < 2 * stride_pages + row_pages {
        scan.elapsed = machine.now() - start_time;
        return Ok(scan);
    }

    for pattern in [0xFFu8, 0x00u8] {
        machine.fill(pid, base, pages * PAGE_SIZE, pattern)?;
        let mut victim_start = stride_pages;
        while victim_start + row_pages + stride_pages <= pages {
            let above = base + (victim_start - stride_pages) * PAGE_SIZE;
            let below = base + (victim_start + stride_pages) * PAGE_SIZE;
            match strategy_hammer(
                machine,
                pid,
                strategy,
                base,
                pages,
                above,
                below,
                stride_pages,
                hammer_pairs,
            )? {
                true => scan.rows_hammered += 1,
                false => {
                    scan.hammer_failures += 1;
                    victim_start += row_pages;
                    continue;
                }
            }
            // Read back the sandwiched row and harvest flips from the
            // attacker's own data. Collateral flips in outer rows (±2, ±3
            // row distances) are deliberately not harvested here: every row
            // gets its own double-sided turn in this sweep, which is both
            // stronger than the collateral disturbance and attributes the
            // flip to the aggressor pair that best reproduces it.
            for page in victim_start..victim_start + row_pages {
                harvest_page(machine, pid, base, page, pattern, above, below, &mut scan)?;
            }
            victim_start += row_pages;
        }
    }

    dedupe(&mut scan.templates);
    score_reproducibility(
        machine,
        pid,
        base,
        pages,
        &mut scan.templates,
        hammer_pairs,
        repro_rounds,
        strategy,
        stride_pages,
    )?;
    scan.elapsed = machine.now() - start_time;
    Ok(scan)
}

/// The scan-shaping parameters a memoized sweep is keyed by. The attack
/// seed is deliberately absent: the sweep never touches the attacker RNG
/// or the victim keys, so two differently seeded attacks over the same
/// machine state run the identical sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MemoKey {
    attacker_cpu: CpuId,
    template_pages: u64,
    hammer_pairs: u64,
    reproducibility_rounds: u32,
    strategy: HammerStrategy,
}

impl MemoKey {
    fn of(config: &ExplFrameConfig, strategy: HammerStrategy) -> Self {
        MemoKey {
            attacker_cpu: config.attacker_cpu,
            template_pages: config.template_pages,
            hammer_pairs: config.hammer_pairs,
            reproducibility_rounds: config.reproducibility_rounds,
            strategy,
        }
    }
}

struct MemoEntry {
    key: MemoKey,
    pre: MachineSnapshot,
    post: MachineSnapshot,
    pool: TemplatePool,
}

/// A cache of completed templating sweeps, for campaigns whose trials fork
/// from a shared warm snapshot: every trial re-runs the *identical* sweep
/// (same machine state, same parameters, no RNG involved), which dominates
/// the non-collect half of a trial. The memo stores the sweep's
/// [`TemplatePool`] together with the post-sweep [`MachineSnapshot`]; a hit
/// replays both — the machine is restored to the post-sweep state and the
/// pool is returned — skipping the hammering entirely.
///
/// **Exactness:** a hit requires the stored *pre-sweep* snapshot to compare
/// equal to the current machine (DRAM data chunks stay `Arc`-shared across
/// forks, so the comparison is pointer-fast on untouched banks). Replayed
/// runs are therefore byte-identical to uncached runs — asserted by the
/// `memoized_template_runs_match_uncached` tests.
///
/// Use via [`Pipeline::template_memo`](crate::Pipeline::template_memo) or
/// [`ExplFrame::run_snapshot_memo`](crate::ExplFrame::run_snapshot_memo).
///
/// # Examples
///
/// ```no_run
/// use explframe_core::{ExplFrame, ExplFrameConfig, TemplateMemo};
/// use machine::SimMachine;
///
/// let config = ExplFrameConfig::small_demo(1);
/// let warm = SimMachine::new(config.machine.clone()).snapshot();
/// let mut memo = TemplateMemo::new();
/// let first = ExplFrame::new(config.clone()).run_snapshot_memo(&warm, &mut memo)?;
/// let second = ExplFrame::new(config).run_snapshot_memo(&warm, &mut memo)?;
/// assert_eq!(first, second); // second trial skipped the sweep
/// assert_eq!(memo.hits(), 1);
/// # Ok::<(), explframe_core::AttackError>(())
/// ```
#[derive(Default)]
pub struct TemplateMemo {
    entries: Vec<MemoEntry>,
    hits: u64,
    misses: u64,
}

impl TemplateMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed sweeps currently cached (one per distinct pre-state ×
    /// parameter combination — an adaptive escalation adds a second).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no sweep has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sweeps answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Sweeps that ran live (and were then cached).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub(crate) fn lookup(
        &mut self,
        config: &ExplFrameConfig,
        strategy: HammerStrategy,
        pre: &MachineSnapshot,
    ) -> Option<(&MachineSnapshot, &TemplatePool)> {
        let key = MemoKey::of(config, strategy);
        let found = self
            .entries
            .iter()
            .position(|e| e.key == key && e.pre == *pre);
        match found {
            Some(i) => {
                self.hits += 1;
                let entry = &self.entries[i];
                Some((&entry.post, &entry.pool))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(
        &mut self,
        config: &ExplFrameConfig,
        strategy: HammerStrategy,
        pre: MachineSnapshot,
        post: MachineSnapshot,
        pool: TemplatePool,
    ) {
        self.entries.push(MemoEntry {
            key: MemoKey::of(config, strategy),
            pre,
            post,
            pool,
        });
    }
}

impl std::fmt::Debug for TemplateMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemplateMemo")
            .field("entries", &self.entries.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// Reads one page, records any flips against `pattern`, and restores it.
#[allow(clippy::too_many_arguments)]
fn harvest_page(
    machine: &mut SimMachine,
    pid: Pid,
    base: VirtAddr,
    page: u64,
    pattern: u8,
    above: VirtAddr,
    below: VirtAddr,
    scan: &mut TemplateScan,
) -> Result<(), MachineError> {
    let va = base + page * PAGE_SIZE;
    let mut buf = vec![0u8; PAGE_SIZE as usize];
    machine.read(pid, va, &mut buf)?;
    let mut dirty = false;
    for (off, &byte) in buf.iter().enumerate() {
        if byte == pattern {
            continue;
        }
        dirty = true;
        let diff = byte ^ pattern;
        for bit in 0..8u8 {
            if diff & (1 << bit) != 0 {
                scan.templates.push(FlipTemplate {
                    page_index: page,
                    page_va: va,
                    page_offset: off as u16,
                    bit,
                    one_to_zero: pattern & (1 << bit) != 0,
                    aggressor_above: above,
                    aggressor_below: below,
                    reproducibility: 0.0,
                });
            }
        }
    }
    if dirty {
        machine.fill(pid, va, PAGE_SIZE, pattern)?;
    }
    Ok(())
}

fn dedupe(templates: &mut Vec<FlipTemplate>) {
    let mut seen = std::collections::HashSet::new();
    templates.retain(|t| seen.insert((t.page_index, t.page_offset, t.bit)));
}

/// Re-hammers each template `rounds` times and records the hit fraction.
#[allow(clippy::too_many_arguments)]
fn score_reproducibility(
    machine: &mut SimMachine,
    pid: Pid,
    base: VirtAddr,
    pages: u64,
    templates: &mut [FlipTemplate],
    hammer_pairs: u64,
    rounds: u32,
    strategy: HammerStrategy,
    stride_pages: u64,
) -> Result<(), MachineError> {
    let window = machine.config().dram.timing.refresh_window();
    for t in templates.iter_mut() {
        let pattern = if t.one_to_zero { 0xFF } else { 0x00 };
        let mut hits = 0u32;
        for _ in 0..rounds {
            machine.fill(pid, t.page_va, PAGE_SIZE, pattern)?;
            // Let all disturbance state from previous rounds refresh away.
            machine.advance(window);
            if !strategy_hammer(
                machine,
                pid,
                strategy,
                base,
                pages,
                t.aggressor_above,
                t.aggressor_below,
                stride_pages,
                hammer_pairs,
            )? {
                break;
            }
            let mut byte = [0u8];
            machine.read(pid, t.page_va + t.page_offset as u64, &mut byte)?;
            let bit_now = byte[0] & (1 << t.bit) != 0;
            if bit_now != t.required_bit_value() {
                hits += 1;
            }
        }
        t.reproducibility = if rounds == 0 {
            0.0
        } else {
            hits as f32 / rounds as f32
        };
        machine.fill(pid, t.page_va, PAGE_SIZE, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::MachineConfig;
    use memsim::CpuId;

    fn scan_small(seed: u64, pages: u64, pairs: u64) -> (SimMachine, Pid, VirtAddr, TemplateScan) {
        let mut m = SimMachine::new(MachineConfig::small(seed));
        let pid = m.spawn(CpuId(0));
        let base = m.mmap(pid, pages).unwrap();
        let scan = template_scan(&mut m, pid, base, pages, pairs, 3).unwrap();
        (m, pid, base, scan)
    }

    #[test]
    fn finds_flips_on_flippy_module() {
        // 16 MiB over the flippy small config: expect a healthy population.
        let (_, _, _, scan) = scan_small(5, 4096, 400_000);
        assert!(scan.rows_hammered > 100);
        assert!(
            !scan.templates.is_empty(),
            "templating found nothing; rows={} fails={}",
            scan.rows_hammered,
            scan.hammer_failures
        );
        // Both directions should be represented eventually.
        let ones = scan.templates.iter().filter(|t| t.one_to_zero).count();
        assert!(ones > 0, "no true-cell flips found");
    }

    #[test]
    fn templates_are_deduplicated_and_scored() {
        let (_, _, _, scan) = scan_small(6, 4096, 400_000);
        let mut keys: Vec<_> = scan
            .templates
            .iter()
            .map(|t| (t.page_index, t.page_offset, t.bit))
            .collect();
        keys.sort();
        let len = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), len, "duplicate templates survived");
        // The weak-cell model is deterministic, so reproducibility is high.
        assert!(
            scan.templates.iter().any(|t| t.reproducibility >= 0.99),
            "no template reproduced reliably"
        );
    }

    #[test]
    fn flips_match_ground_truth_locations() {
        // Every template must correspond to a real weak cell (oracle check).
        let (mut m, pid, _, scan) = scan_small(7, 2048, 400_000);
        for t in &scan.templates {
            let pa = m.translate(pid, t.page_va).expect("template page mapped");
            let cells = m.dram_mut().weak_cells_at(pa + t.page_offset as u64);
            let coord = m.dram().mapping().phys_to_coord(pa + t.page_offset as u64);
            let bit_in_row = coord.col * 8 + t.bit as u32;
            assert!(
                cells.iter().any(|c| c.bit_in_row == bit_in_row),
                "template at page {} offset {} bit {} has no weak cell",
                t.page_index,
                t.page_offset,
                t.bit
            );
        }
    }

    #[test]
    fn strategy_aggressors_fan_out_within_the_buffer() {
        use crate::config::HammerStrategy;
        let base = VirtAddr(0x10_0000);
        let pages = 256u64;
        let stride = 16u64; // pages between same-bank rows
        let above = base + 64 * PAGE_SIZE;
        let below = base + 96 * PAGE_SIZE;

        // Double-sided: exactly the pair.
        let pair = strategy_aggressors(
            HammerStrategy::DoubleSided,
            base,
            pages,
            above,
            below,
            stride,
        );
        assert_eq!(pair, vec![above, below]);

        // Many-sided: the pair plus decoys alternating outwards at the
        // same-bank stride.
        let many = strategy_aggressors(
            HammerStrategy::ManySided { rows: 6 },
            base,
            pages,
            above,
            below,
            stride,
        );
        assert_eq!(many.len(), 6);
        assert_eq!(many[0], above);
        assert_eq!(many[1], below);
        assert_eq!(many[2], VirtAddr(above.0 - stride * PAGE_SIZE));
        assert_eq!(many[3], VirtAddr(below.0 + stride * PAGE_SIZE));
        // All rows stay inside [base, base + pages * PAGE_SIZE).
        for va in &many {
            assert!(va.0 >= base.0 && va.0 < base.0 + pages * PAGE_SIZE);
        }

        // Near the buffer edge the fan-out clips one side but still
        // returns what fits.
        let edge_above = base + stride * PAGE_SIZE / 2; // no room below base
        let edge_below = edge_above + 2 * stride * PAGE_SIZE;
        let clipped = strategy_aggressors(
            HammerStrategy::ManySided { rows: 8 },
            base,
            5 * stride, // tiny buffer
            edge_above,
            edge_below,
            stride,
        );
        assert!(clipped.len() >= 2);
        for va in &clipped {
            assert!(va.0 >= base.0 && va.0 < base.0 + 5 * stride * PAGE_SIZE);
        }
    }

    #[test]
    fn memoized_template_runs_match_uncached() {
        use crate::{ExplFrame, ExplFrameConfig};

        let config = ExplFrameConfig::small_demo(2).with_template_pages(512);
        let warm = SimMachine::new(config.machine.clone()).snapshot();
        let baseline = ExplFrame::new(config.clone()).run_snapshot(&warm).unwrap();

        let mut memo = TemplateMemo::new();
        let first = ExplFrame::new(config.clone())
            .run_snapshot_memo(&warm, &mut memo)
            .unwrap();
        let second = ExplFrame::new(config.clone())
            .run_snapshot_memo(&warm, &mut memo)
            .unwrap();
        assert_eq!(first, baseline, "uncached-path trial diverged");
        assert_eq!(second, baseline, "memo-hit trial diverged");
        assert_eq!((memo.misses(), memo.hits(), memo.len()), (1, 1, 1));

        // A different seed over the same machine reuses the cached sweep
        // (the sweep never reads the attacker RNG)...
        let reseeded = ExplFrameConfig::small_demo(9).with_template_pages(512);
        let _ = ExplFrame::new(reseeded)
            .run_snapshot_memo(&warm, &mut memo)
            .unwrap();
        assert_eq!((memo.hits(), memo.len()), (2, 1));

        // ...but different scan parameters miss and cache a new entry.
        let wider = config.with_template_pages(640);
        let wide = ExplFrame::new(wider.clone())
            .run_snapshot_memo(&warm, &mut memo)
            .unwrap();
        assert_eq!((memo.misses(), memo.len()), (2, 2));
        assert_eq!(wide, ExplFrame::new(wider).run_snapshot(&warm).unwrap());
    }

    #[test]
    fn memo_rejects_a_diverged_machine_state() {
        use crate::{ExplFrame, ExplFrameConfig};

        let config = ExplFrameConfig::small_demo(3).with_template_pages(512);
        let warm = SimMachine::new(config.machine.clone()).snapshot();
        let mut memo = TemplateMemo::new();
        let _ = ExplFrame::new(config.clone())
            .run_snapshot_memo(&warm, &mut memo)
            .unwrap();

        // Same parameters, different pre-state: the entry must not be
        // served (a stale hit would replay the wrong machine).
        let mut drifted = warm.fork();
        drifted.advance(1);
        let shifted = drifted.snapshot();
        let a = ExplFrame::new(config.clone())
            .run_snapshot_memo(&shifted, &mut memo)
            .unwrap();
        assert_eq!(memo.misses(), 2, "diverged pre-state must miss");
        assert_eq!(a, ExplFrame::new(config).run_snapshot(&shifted).unwrap());
    }

    #[test]
    fn tiny_buffer_yields_empty_scan() {
        let (_, _, _, scan) = scan_small(8, 8, 1000);
        assert!(scan.templates.is_empty());
        assert_eq!(scan.rows_hammered, 0);
    }

    #[test]
    fn insufficient_hammering_finds_nothing() {
        let (_, _, _, scan) = scan_small(5, 1024, 500);
        assert!(scan.templates.is_empty());
    }
}
