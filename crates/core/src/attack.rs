//! The ExplFrame attack driver: the paper's standard five-phase
//! composition — Template → Release → Steer → Hammer → Collect & Analyze —
//! expressed over the [`Pipeline`] phase API.
//!
//! Everything the attacker does here is unprivileged on the modelled
//! system: hammering and reading its *own* buffer, `munmap` of one of its
//! own pages, staying scheduled on its CPU, and querying the victim's
//! encryption service. The kernel's page frame cache does the targeting for
//! free (paper §V–§VI). Ground-truth oracles (weak-cell maps, victim frame
//! numbers, victim keys) are used only to *report* success, never to drive
//! the attack.
//!
//! The driver is deliberately thin: each `run*` method builds a
//! [`Pipeline`] and strings the standard phases together. Custom
//! compositions (template-once/steer-many, mixed-cipher multi-victim) use
//! the same phases directly — see the [`Pipeline`] docs.

use machine::{MachineSnapshot, SimMachine};

use crate::config::ExplFrameConfig;
use crate::error::AttackError;
use crate::events::{NullObserver, Observer};
use crate::pipeline::Pipeline;
use crate::template::TemplateMemo;

/// Why an attack run ended.
#[must_use = "inspect the outcome to distinguish key recovery from failure modes"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOutcome {
    /// The full key was recovered.
    KeyRecovered,
    /// Templating produced no template usable against this victim.
    NoUsableTemplates,
    /// Every fault round failed (steering noise, data-pattern mismatch, or
    /// statistics that never converged).
    OutOfTemplates,
}

impl AttackOutcome {
    /// Kebab-case label (for traces and reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackOutcome::KeyRecovered => "key-recovered",
            AttackOutcome::NoUsableTemplates => "no-usable-templates",
            AttackOutcome::OutOfTemplates => "out-of-templates",
        }
    }
}

/// Everything measured during one attack run.
///
/// Derives `PartialEq` so tests can assert that two runs from the same seed
/// are *identical*, not merely similar (see `tests/determinism.rs`).
#[must_use = "an attack report carries the outcome and all measurements"]
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Why the run ended.
    pub outcome: AttackOutcome,
    /// Raw templates found by the sweep.
    pub templates_found: usize,
    /// Templates usable against the victim's table layout.
    pub usable_templates: usize,
    /// Fault rounds in which the victim verifiably received the released
    /// frame (oracle-checked, for reporting).
    pub steering_successes: u32,
    /// Fault rounds attempted.
    pub fault_rounds: u32,
    /// Total ciphertexts collected across rounds.
    pub ciphertexts_collected: u64,
    /// Total aggressor pairs hammered (templating + re-hammering).
    pub hammer_pairs_spent: u64,
    /// Recovered AES-128 key, if the victim ran AES.
    pub recovered_aes_key: Option<[u8; 16]>,
    /// Recovered PRESENT-80 key, if the victim ran PRESENT.
    pub recovered_present_key: Option<[u8; 10]>,
    /// Whether the recovered key matches the victim's actual key
    /// (oracle-checked).
    pub key_correct: bool,
    /// Times the run escalated its hammer strategy (0 for the classic
    /// driver; the adaptive driver escalates once per TRR-suppressed
    /// sweep).
    pub strategy_escalations: u32,
    /// Simulated time the whole attack consumed.
    pub elapsed: dram::Nanos,
    /// With the command clock on: how much faster the run could have
    /// activated rows before exhausting the per-refresh-window activation
    /// budget (`max_acts_per_window / achieved acts-per-window`). Values
    /// above 1 mean the attack was nowhere near the device's command-rate
    /// ceiling. `None` when the timing engine is off (or no activations
    /// were issued).
    pub hammer_rate_headroom: Option<f64>,
}

impl AttackReport {
    /// Returns `true` if the run recovered the correct key.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.outcome == AttackOutcome::KeyRecovered && self.key_correct
    }
}

/// The attack driver. Construct with a configuration, then [`run`](Self::run).
///
/// # Examples
///
/// ```no_run
/// use explframe_core::{ExplFrame, ExplFrameConfig};
///
/// let report = ExplFrame::new(ExplFrameConfig::small_demo(42)).run().unwrap();
/// assert!(report.succeeded());
/// ```
#[derive(Debug, Clone)]
pub struct ExplFrame {
    config: ExplFrameConfig,
}

impl ExplFrame {
    /// Creates a driver for `config`.
    pub fn new(config: ExplFrameConfig) -> Self {
        ExplFrame { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExplFrameConfig {
        &self.config
    }

    /// Builds a fresh machine from the configuration and runs the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures; attack-level
    /// failures (no templates, no fault) are reported in
    /// [`AttackReport::outcome`] instead.
    pub fn run(&self) -> Result<AttackReport, AttackError> {
        let mut machine = SimMachine::new(self.config.machine.clone());
        self.run_on(&mut machine)
    }

    /// Runs the attack on an existing machine (lets experiments pre-load
    /// noise or share a machine across trials).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_on(&self, machine: &mut SimMachine) -> Result<AttackReport, AttackError> {
        let mut observer = NullObserver;
        self.run_on_traced(machine, &mut observer)
    }

    /// Runs the attack on a machine forked from `snapshot` — the warm-pool
    /// fast path: boot + warm once, snapshot, then run thousands of trials
    /// without paying the boot cost again. The report is byte-identical to
    /// [`Self::run_on`] against a machine in the snapshot's state.
    ///
    /// The snapshot must come from a machine built from
    /// [`ExplFrameConfig::machine`] (the fork inherits the snapshot's
    /// configuration, weak-cell population included).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_snapshot(&self, snapshot: &MachineSnapshot) -> Result<AttackReport, AttackError> {
        let mut machine = snapshot.fork();
        self.run_on(&mut machine)
    }

    /// [`run_snapshot`](Self::run_snapshot) with the templating sweep
    /// served through a [`TemplateMemo`]: the first trial from a given
    /// snapshot runs (and caches) the sweep, every later trial from the
    /// same snapshot replays it from the cache. Reports are byte-identical
    /// to [`Self::run_snapshot`].
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_snapshot_memo(
        &self,
        snapshot: &MachineSnapshot,
        memo: &mut TemplateMemo,
    ) -> Result<AttackReport, AttackError> {
        let mut machine = snapshot.fork();
        let mut observer = NullObserver;
        self.drive(&mut machine, &mut observer, false, Some((snapshot, memo)))
    }

    /// [`run_adaptive_snapshot`](Self::run_adaptive_snapshot) through a
    /// [`TemplateMemo`] (see [`Self::run_snapshot_memo`]); an escalating
    /// run memoizes both sweeps.
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_adaptive_snapshot_memo(
        &self,
        snapshot: &MachineSnapshot,
        memo: &mut TemplateMemo,
    ) -> Result<AttackReport, AttackError> {
        let mut machine = snapshot.fork();
        let mut observer = NullObserver;
        self.drive(&mut machine, &mut observer, true, Some((snapshot, memo)))
    }

    /// [`run_adaptive`](Self::run_adaptive) on a machine forked from
    /// `snapshot` (see [`Self::run_snapshot`]).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_adaptive_snapshot(
        &self,
        snapshot: &MachineSnapshot,
    ) -> Result<AttackReport, AttackError> {
        let mut machine = snapshot.fork();
        let mut observer = NullObserver;
        self.run_adaptive_on_traced(&mut machine, &mut observer)
    }

    /// [`run`](Self::run) with an [`Observer`] receiving every phase event
    /// (observers never change the run's results).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_traced(&self, observer: &mut dyn Observer) -> Result<AttackReport, AttackError> {
        let mut machine = SimMachine::new(self.config.machine.clone());
        self.run_on_traced(&mut machine, observer)
    }

    /// [`run_on`](Self::run_on) with an [`Observer`].
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_on_traced(
        &self,
        machine: &mut SimMachine,
        observer: &mut dyn Observer,
    ) -> Result<AttackReport, AttackError> {
        self.drive(machine, observer, false, None)
    }

    /// The countermeasure-aware composition: like [`Self::run`], but when
    /// the templating sweep comes back empty — the signature of a
    /// Target-Row-Refresh engine refreshing every sandwiched victim before
    /// its flip threshold — the driver escalates to many-sided hammering
    /// ([`crate::HammerStrategy::ManySided`] with
    /// [`ExplFrameConfig::many_sided_rows`] aggressor rows) and re-sweeps;
    /// all later re-hammer rounds keep the escalated pattern. Combine with
    /// [`ExplFrameConfig::ecc_aware`] to also discard rounds whose fault
    /// an ECC DIMM silently corrects.
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_adaptive(&self) -> Result<AttackReport, AttackError> {
        let mut machine = SimMachine::new(self.config.machine.clone());
        let mut observer = NullObserver;
        self.run_adaptive_on_traced(&mut machine, &mut observer)
    }

    /// [`run_adaptive`](Self::run_adaptive) with an [`Observer`].
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_adaptive_traced(
        &self,
        observer: &mut dyn Observer,
    ) -> Result<AttackReport, AttackError> {
        let mut machine = SimMachine::new(self.config.machine.clone());
        self.run_adaptive_on_traced(&mut machine, observer)
    }

    /// [`run_adaptive`](Self::run_adaptive) on an existing machine, with an
    /// [`Observer`].
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_adaptive_on_traced(
        &self,
        machine: &mut SimMachine,
        observer: &mut dyn Observer,
    ) -> Result<AttackReport, AttackError> {
        self.drive(machine, observer, true, None)
    }

    /// The shared five-phase loop; `adaptive` enables the templating
    /// escalation, `memo` routes the sweep(s) through a [`TemplateMemo`]
    /// keyed on the snapshot the machine was forked from. Building the
    /// pipeline does not touch the machine and templating is the first
    /// phase, so the fork source *is* the pre-sweep state — keying on it
    /// lets memo hits compare against the caller's capture by shared
    /// structure instead of re-snapshotting every trial.
    fn drive(
        &self,
        machine: &mut SimMachine,
        observer: &mut dyn Observer,
        adaptive: bool,
        memo: Option<(&MachineSnapshot, &mut TemplateMemo)>,
    ) -> Result<AttackReport, AttackError> {
        let cfg = &self.config;
        let mut pipe = Pipeline::new(machine, cfg.clone()).with_observer(observer);

        if cfg.probe_mapping {
            pipe.probe_mapping()?;
        }

        // With the command clock on, a many-sided round wider than the
        // activation budget supports would dilute each aggressor below its
        // flip threshold — clamp the escalation width to what one refresh
        // window can feed.
        let mut escalate_rows = cfg.many_sided_rows;
        if cfg.machine.dram.timed {
            escalate_rows = escalate_rows.min(
                cfg.machine
                    .dram
                    .cells
                    .max_feasible_rows(&cfg.machine.dram.timing),
            );
        }
        let escalate_to = crate::HammerStrategy::ManySided {
            rows: escalate_rows,
        };
        let pool = match (adaptive, memo) {
            // The probe mutates the machine, so the fork-source snapshot no
            // longer matches — key the memo on a fresh capture instead.
            (true, Some((pre, memo))) if cfg.probe_mapping => {
                let _ = pre;
                pipe.template_adaptive_memo(escalate_to, memo)?
            }
            (false, Some((pre, memo))) if cfg.probe_mapping => {
                let _ = pre;
                pipe.template_memo(memo)?
            }
            (true, Some((pre, memo))) => pipe.template_adaptive_memo_at(pre, escalate_to, memo)?,
            (true, None) => pipe.template_adaptive(escalate_to)?,
            (false, Some((pre, memo))) => pipe.template_memo_at(pre, memo)?,
            (false, None) => pipe.template()?,
        };
        let mut remaining = pipe.select(&pool, cfg.victim);
        if remaining.is_empty() {
            return Ok(pipe.finish(AttackOutcome::NoUsableTemplates));
        }

        while pipe.counters().fault_rounds < cfg.max_fault_rounds {
            let Some(template) = pipe.next_template(&mut remaining, cfg.victim) else {
                break;
            };
            let released = pipe.release(&pool, template)?;
            let steered = pipe.steer(&released)?;
            let victim = steered.victim;
            if !pipe.hammer(&pool, &steered)? {
                pipe.stop_victim(victim)?;
                continue;
            }
            let faulted = pipe.collect(steered)?;
            let recovered = pipe.analyze(faulted)?;
            pipe.stop_victim(victim)?;
            if recovered.is_some() {
                return Ok(pipe.finish(AttackOutcome::KeyRecovered));
            }
        }
        Ok(pipe.finish(AttackOutcome::OutOfTemplates))
    }
}
