//! The ExplFrame attack pipeline: Template → Release → Steer → Hammer →
//! Collect → Analyze.
//!
//! Everything the attacker does here is unprivileged on the modelled
//! system: hammering and reading its *own* buffer, `munmap` of one of its
//! own pages, staying scheduled on its CPU, and querying the victim's
//! encryption service. The kernel's page frame cache does the targeting for
//! free (paper §V–§VI). Ground-truth oracles (weak-cell maps, victim frame
//! numbers, victim keys) are used only to *report* success, never to drive
//! the attack.

use std::collections::BTreeSet;

use ciphers::{
    present_sbox_image, BlockCipher, Present80, RamTableSource, TableImage, PRESENT_SBOX,
};
use dram::Nanos;
use fault::{PfaCollector, PresentPfa, TTablePfa, TableFault, TeFaultClass};
use machine::SimMachine;
use memsim::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::{ExplFrameConfig, VictimCipherKind};
use crate::error::AttackError;
use crate::template::{template_scan, FlipTemplate};
use crate::victim::{VictimCipherService, VictimKeys};

/// Why an attack run ended.
#[must_use = "inspect the outcome to distinguish key recovery from failure modes"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOutcome {
    /// The full key was recovered.
    KeyRecovered,
    /// Templating produced no template usable against this victim.
    NoUsableTemplates,
    /// Every fault round failed (steering noise, data-pattern mismatch, or
    /// statistics that never converged).
    OutOfTemplates,
}

/// Everything measured during one attack run.
///
/// Derives `PartialEq` so tests can assert that two runs from the same seed
/// are *identical*, not merely similar (see `tests/determinism.rs`).
#[must_use = "an attack report carries the outcome and all measurements"]
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Why the run ended.
    pub outcome: AttackOutcome,
    /// Raw templates found by the sweep.
    pub templates_found: usize,
    /// Templates usable against the victim's table layout.
    pub usable_templates: usize,
    /// Fault rounds in which the victim verifiably received the released
    /// frame (oracle-checked, for reporting).
    pub steering_successes: u32,
    /// Fault rounds attempted.
    pub fault_rounds: u32,
    /// Total ciphertexts collected across rounds.
    pub ciphertexts_collected: u64,
    /// Total aggressor pairs hammered (templating + re-hammering).
    pub hammer_pairs_spent: u64,
    /// Recovered AES-128 key, if the victim ran AES.
    pub recovered_aes_key: Option<[u8; 16]>,
    /// Recovered PRESENT-80 key, if the victim ran PRESENT.
    pub recovered_present_key: Option<[u8; 10]>,
    /// Whether the recovered key matches the victim's actual key
    /// (oracle-checked).
    pub key_correct: bool,
    /// Simulated time the whole attack consumed.
    pub elapsed: Nanos,
}

impl AttackReport {
    /// Returns `true` if the run recovered the correct key.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.outcome == AttackOutcome::KeyRecovered && self.key_correct
    }
}

/// The attack driver. Construct with a configuration, then [`run`](Self::run).
///
/// # Examples
///
/// ```no_run
/// use explframe_core::{ExplFrame, ExplFrameConfig};
///
/// let report = ExplFrame::new(ExplFrameConfig::small_demo(42)).run().unwrap();
/// assert!(report.succeeded());
/// ```
#[derive(Debug, Clone)]
pub struct ExplFrame {
    config: ExplFrameConfig,
}

/// Per-round collection result.
enum RoundResult {
    /// The needed positions all converged.
    Converged,
    /// A needed position saw every value: no last-round fault landed.
    NoFault,
    /// Budget exhausted before convergence.
    Exhausted,
}

impl ExplFrame {
    /// Creates a driver for `config`.
    pub fn new(config: ExplFrameConfig) -> Self {
        ExplFrame { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExplFrameConfig {
        &self.config
    }

    /// Builds a fresh machine from the configuration and runs the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Machine`] for substrate failures; attack-level
    /// failures (no templates, no fault) are reported in
    /// [`AttackReport::outcome`] instead.
    pub fn run(&self) -> Result<AttackReport, AttackError> {
        let mut machine = SimMachine::new(self.config.machine.clone());
        self.run_on(&mut machine)
    }

    /// Runs the attack on an existing machine (lets experiments pre-load
    /// noise or share a machine across trials).
    ///
    /// # Errors
    ///
    /// See [`Self::run`].
    pub fn run_on(&self, machine: &mut SimMachine) -> Result<AttackReport, AttackError> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA77A_C4E2);
        let start_time = machine.now();
        let hammer_start = machine.stats().hammer_pairs;

        // ------------------------------------------------------------------
        // Phase 1: templating over the attacker's own buffer.
        // ------------------------------------------------------------------
        let attacker = machine.spawn(cfg.attacker_cpu);
        let buffer = machine.mmap(attacker, cfg.template_pages)?;
        let scan = template_scan(
            machine,
            attacker,
            buffer,
            cfg.template_pages,
            cfg.hammer_pairs,
            cfg.reproducibility_rounds,
        )?;

        let mut usable: Vec<FlipTemplate> = select_attack_pages(&scan.templates, cfg.victim);
        usable.sort_by(|a, b| {
            b.reproducibility
                .partial_cmp(&a.reproducibility)
                .expect("reproducibility is never NaN")
        });

        let mut report = AttackReport {
            outcome: AttackOutcome::NoUsableTemplates,
            templates_found: scan.templates.len(),
            usable_templates: usable.len(),
            steering_successes: 0,
            fault_rounds: 0,
            ciphertexts_collected: 0,
            hammer_pairs_spent: 0,
            recovered_aes_key: None,
            recovered_present_key: None,
            key_correct: false,
            elapsed: 0,
        };
        if usable.is_empty() {
            report.elapsed = machine.now() - start_time;
            report.hammer_pairs_spent = machine.stats().hammer_pairs - hammer_start;
            return Ok(report);
        }

        // ------------------------------------------------------------------
        // Phase 2..N: fault rounds.
        // ------------------------------------------------------------------
        let victim_keys = VictimKeys::from_seed(cfg.seed);
        let mut ttable_driver = TTablePfa::new();
        let mut tables_needed: BTreeSet<usize> = (0..4).collect();
        let mut remaining = usable;
        report.outcome = AttackOutcome::OutOfTemplates;

        while report.fault_rounds < cfg.max_fault_rounds {
            let Some(template) = pick_template(&mut remaining, cfg.victim, &tables_needed) else {
                break;
            };
            report.fault_rounds += 1;

            // Release the vulnerable frame into this CPU's page frame cache;
            // the attacker stays active (no sleep) so the cache survives.
            let released = machine
                .translate(attacker, template.page_va)
                .map(|pa| pa.as_u64() / PAGE_SIZE);
            machine.munmap(attacker, template.page_va, 1)?;

            // The victim arrives and its table page's first touch pops the
            // released frame off the page frame cache head.
            let victim =
                VictimCipherService::start(machine, cfg.victim_cpu, cfg.victim, victim_keys)?;
            let steered = released.is_some() && victim.table_pfn(machine).map(|p| p.0) == released;
            if steered {
                report.steering_successes += 1;
            }

            // One pre-fault known pair (used by PRESENT master-key recovery).
            let mut known_plain = vec![0u8; victim.block_bytes()];
            rng.fill(&mut known_plain[..]);
            let mut known_cipher = known_plain.clone();
            victim.encrypt(machine, &mut known_cipher)?;

            // Re-hammer the retained aggressors around the released frame.
            let hammered = machine.hammer_pair_virt(
                attacker,
                template.aggressor_above,
                template.aggressor_below,
                cfg.rehammer_pairs,
            );
            if hammered.is_err() {
                victim.stop(machine)?;
                continue;
            }

            // Collect ciphertexts and analyze.
            let done = self.collect_and_analyze(
                machine,
                &victim,
                &template,
                &known_plain,
                &known_cipher,
                &mut rng,
                &mut ttable_driver,
                &mut tables_needed,
                &mut report,
            )?;
            victim.stop(machine)?;
            if done {
                report.outcome = AttackOutcome::KeyRecovered;
                break;
            }
        }

        report.key_correct = match (
            cfg.victim,
            &report.recovered_aes_key,
            &report.recovered_present_key,
        ) {
            (VictimCipherKind::AesSbox | VictimCipherKind::AesTtable, Some(k), _) => {
                *k == victim_keys.aes
            }
            (VictimCipherKind::Present, _, Some(k)) => *k == victim_keys.present,
            _ => false,
        };
        report.elapsed = machine.now() - start_time;
        report.hammer_pairs_spent = machine.stats().hammer_pairs - hammer_start;
        Ok(report)
    }

    /// Runs collection + analysis for one fault round. Returns `Ok(true)`
    /// when the full key is recovered.
    #[allow(clippy::too_many_arguments)]
    fn collect_and_analyze(
        &self,
        machine: &mut SimMachine,
        victim: &VictimCipherService,
        template: &FlipTemplate,
        known_plain: &[u8],
        known_cipher: &[u8],
        rng: &mut StdRng,
        ttable_driver: &mut TTablePfa,
        tables_needed: &mut BTreeSet<usize>,
        report: &mut AttackReport,
    ) -> Result<bool, AttackError> {
        let cfg = &self.config;
        let entry = template.page_offset as usize;
        match cfg.victim {
            VictimCipherKind::AesSbox => {
                let mut collector = PfaCollector::new();
                let needed: Vec<usize> = (0..16).collect();
                match self.collect_aes(machine, victim, &mut collector, &needed, rng, report)? {
                    RoundResult::Converged => {}
                    _ => return Ok(false),
                }
                let analysis = collector.analyze_known_fault(TableImage::sbox()[entry]);
                if let Some(key) = analysis.master_key() {
                    report.recovered_aes_key = Some(key);
                    return Ok(true);
                }
                Ok(false)
            }
            VictimCipherKind::AesTtable => {
                let fault = TableFault {
                    offset: entry,
                    bit: template.bit,
                };
                let TeFaultClass::SLane { positions, .. } = fault.classify_te() else {
                    return Ok(false); // filtered earlier; defensive
                };
                let mut collector = PfaCollector::new();
                match self.collect_aes(machine, victim, &mut collector, &positions, rng, report)? {
                    RoundResult::Converged => {}
                    _ => return Ok(false),
                }
                if ttable_driver.absorb(fault, &collector).is_some() {
                    let (table, _, _) = TableImage::te_locate(entry);
                    tables_needed.remove(&table);
                }
                if let Some(key) = ttable_driver.master_key() {
                    report.recovered_aes_key = Some(key);
                    return Ok(true);
                }
                Ok(false)
            }
            VictimCipherKind::Present => {
                let mut collector = PresentPfa::new();
                loop {
                    let mut block = [0u8; 8];
                    rng.fill(&mut block[..]);
                    victim.encrypt(machine, &mut block)?;
                    collector.observe(&block);
                    report.ciphertexts_collected += 1;
                    if collector.total() % 32 == 0 || collector.all_positions_determined() {
                        if collector.all_positions_determined() {
                            break;
                        }
                        if (0..16).any(|i| collector.unseen_count(i) == 0) {
                            return Ok(false); // no fault landed
                        }
                        if collector.total() >= cfg.max_ciphertexts {
                            return Ok(false);
                        }
                    }
                }
                let v = PRESENT_SBOX[entry];
                let plain: [u8; 8] = known_plain.try_into().expect("PRESENT block");
                let cipher: [u8; 8] = known_cipher.try_into().expect("PRESENT block");
                let recovered = collector.recover_master_key(v, |cand| {
                    let mut b = plain;
                    Present80::new(cand, RamTableSource::new(present_sbox_image().to_vec()))
                        .encrypt_block(&mut b);
                    b == cipher
                });
                if let Some(key) = recovered {
                    report.recovered_present_key = Some(key);
                    return Ok(true);
                }
                Ok(false)
            }
        }
    }

    /// Collects AES ciphertexts until `needed` positions are determined,
    /// a needed position proves unfaulted, or the budget runs out.
    fn collect_aes(
        &self,
        machine: &mut SimMachine,
        victim: &VictimCipherService,
        collector: &mut PfaCollector,
        needed: &[usize],
        rng: &mut StdRng,
        report: &mut AttackReport,
    ) -> Result<RoundResult, AttackError> {
        loop {
            let mut block = [0u8; 16];
            rng.fill(&mut block[..]);
            victim.encrypt(machine, &mut block)?;
            collector.observe(&block);
            report.ciphertexts_collected += 1;
            if collector.total() % 64 == 0 {
                if needed.iter().all(|&p| collector.unseen_count(p) == 1) {
                    return Ok(RoundResult::Converged);
                }
                if needed.iter().any(|&p| collector.unseen_count(p) == 0) {
                    return Ok(RoundResult::NoFault);
                }
                if collector.total() >= self.config.max_ciphertexts {
                    return Ok(RoundResult::Exhausted);
                }
            }
        }
    }
}

/// Whether a template *fires* against the victim's image: its offset falls
/// inside the table image and the image's bit at that location holds the
/// charged value the flip discharges.
fn template_fires(t: &FlipTemplate, kind: VictimCipherKind) -> bool {
    let off = t.page_offset as usize;
    if off >= kind.image_len() {
        return false;
    }
    let image_bit = match kind {
        VictimCipherKind::AesSbox => TableImage::sbox()[off] & (1 << t.bit) != 0,
        VictimCipherKind::AesTtable => TableImage::te_tables()[off] & (1 << t.bit) != 0,
        VictimCipherKind::Present => present_sbox_image()[off] & (1 << t.bit) != 0,
    };
    image_bit == t.required_bit_value()
}

/// Selects one attack template per vulnerable page: pages where *exactly
/// one* templated flip fires against the victim image (several simultaneous
/// table faults would break the single-missing-value statistics), and that
/// flip is analytically usable ([`template_usable`]).
pub fn select_attack_pages(
    templates: &[FlipTemplate],
    kind: VictimCipherKind,
) -> Vec<FlipTemplate> {
    let mut by_page: std::collections::BTreeMap<u64, Vec<&FlipTemplate>> =
        std::collections::BTreeMap::new();
    for t in templates {
        by_page.entry(t.page_index).or_default().push(t);
    }
    let mut out = Vec::new();
    for (_, page_templates) in by_page {
        let firing: Vec<&&FlipTemplate> = page_templates
            .iter()
            .filter(|t| template_fires(t, kind))
            .collect();
        if let [only] = firing[..] {
            if template_usable(only, kind) {
                out.push(**only);
            }
        }
    }
    out
}

/// Whether a template can corrupt the victim's table usefully: its offset
/// must fall inside the table image, the image's bit at that location must
/// hold the charged value the flip discharges, and for T-table/PRESENT
/// victims the location must be analytically exploitable.
pub fn template_usable(t: &FlipTemplate, kind: VictimCipherKind) -> bool {
    let off = t.page_offset as usize;
    if off >= kind.image_len() || t.reproducibility < 0.5 {
        return false;
    }
    let image_bit = match kind {
        VictimCipherKind::AesSbox => TableImage::sbox()[off] & (1 << t.bit) != 0,
        VictimCipherKind::AesTtable => TableImage::te_tables()[off] & (1 << t.bit) != 0,
        VictimCipherKind::Present => present_sbox_image()[off] & (1 << t.bit) != 0,
    };
    if image_bit != t.required_bit_value() {
        return false;
    }
    match kind {
        VictimCipherKind::AesSbox => true,
        VictimCipherKind::AesTtable => TableFault {
            offset: off,
            bit: t.bit,
        }
        .classify_te()
        .is_exploitable(),
        // Table bytes store one 4-bit S-box value each; flips in the unused
        // high nibble are masked out by the S-layer.
        VictimCipherKind::Present => t.bit < 4,
    }
}

/// Picks the next template: for T-table victims, one whose fault lands in a
/// still-needed table; otherwise simply the most reproducible remaining.
fn pick_template(
    remaining: &mut Vec<FlipTemplate>,
    kind: VictimCipherKind,
    tables_needed: &BTreeSet<usize>,
) -> Option<FlipTemplate> {
    let idx = match kind {
        VictimCipherKind::AesTtable => remaining.iter().position(|t| {
            let (table, _, _) = TableImage::te_locate(t.page_offset as usize);
            tables_needed.contains(&table)
        })?,
        _ => {
            if remaining.is_empty() {
                return None;
            }
            0
        }
    };
    Some(remaining.remove(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::CellPolarity;
    use machine::VirtAddr;

    fn template(offset: u16, bit: u8, one_to_zero: bool) -> FlipTemplate {
        let _ = CellPolarity::True;
        FlipTemplate {
            page_index: 0,
            page_va: VirtAddr(0),
            page_offset: offset,
            bit,
            one_to_zero,
            aggressor_above: VirtAddr(0),
            aggressor_below: VirtAddr(0),
            reproducibility: 1.0,
        }
    }

    #[test]
    fn usability_respects_image_bounds_and_bits() {
        // S-box entry 0 is 0x63 = 0b0110_0011.
        assert!(template_usable(
            &template(0, 0, true),
            VictimCipherKind::AesSbox
        ));
        assert!(!template_usable(
            &template(0, 2, true),
            VictimCipherKind::AesSbox
        ));
        assert!(template_usable(
            &template(0, 2, false),
            VictimCipherKind::AesSbox
        ));
        // Outside the 256-byte image.
        assert!(!template_usable(
            &template(256, 0, true),
            VictimCipherKind::AesSbox
        ));
        // Low reproducibility is rejected.
        let mut t = template(0, 0, true);
        t.reproducibility = 0.1;
        assert!(!template_usable(&t, VictimCipherKind::AesSbox));
    }

    #[test]
    fn ttable_usability_requires_s_lane() {
        let te = TableImage::te_tables();
        // Find an S-lane offset with a set bit and a non-S-lane one.
        let s_lane_off = TableImage::te_entry_offset(0, 0x53) + ciphers::FINAL_ROUND_S_LANE[0];
        let bit = (0..8).find(|&b| te[s_lane_off] & (1 << b) != 0).unwrap();
        assert!(template_usable(
            &template(s_lane_off as u16, bit, true),
            VictimCipherKind::AesTtable
        ));
        let other_off = TableImage::te_entry_offset(0, 0x53); // lane 0 = 3S lane
        let bit2 = (0..8).find(|&b| te[other_off] & (1 << b) != 0).unwrap();
        assert!(!template_usable(
            &template(other_off as u16, bit2, true),
            VictimCipherKind::AesTtable
        ));
    }

    #[test]
    fn present_usability_requires_low_nibble() {
        // PRESENT S[0] = 0xC = 0b1100: bits 2,3 set.
        assert!(template_usable(
            &template(0, 2, true),
            VictimCipherKind::Present
        ));
        assert!(!template_usable(
            &template(0, 4, true),
            VictimCipherKind::Present
        ));
        assert!(!template_usable(
            &template(0, 4, false),
            VictimCipherKind::Present
        ));
        assert!(template_usable(
            &template(0, 1, false),
            VictimCipherKind::Present
        ));
    }

    #[test]
    fn pick_template_covers_needed_tables() {
        let te = TableImage::te_tables();
        let mk = |table: usize| {
            let off = TableImage::te_entry_offset(table, 7) + ciphers::FINAL_ROUND_S_LANE[table];
            let bit = (0..8).find(|&b| te[off] & (1 << b) != 0).unwrap();
            template(off as u16, bit, true)
        };
        let mut remaining = vec![mk(1), mk(0), mk(1)];
        let mut needed: BTreeSet<usize> = [0].into_iter().collect();
        let picked = pick_template(&mut remaining, VictimCipherKind::AesTtable, &needed).unwrap();
        let (table, _, _) = TableImage::te_locate(picked.page_offset as usize);
        assert_eq!(table, 0);
        needed.clear();
        assert!(pick_template(&mut remaining, VictimCipherKind::AesTtable, &needed).is_none());
    }
}
