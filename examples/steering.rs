//! Page-frame-cache steering demo (paper §V), including the failure modes:
//! cross-CPU victims and a sleeping attacker.
//!
//! ```text
//! cargo run --release --example steering
//! ```

use explframe::machine::{IdleDrainPolicy, MachineConfig, SimMachine};
use explframe::memsim::{CpuId, PAGE_SIZE};

fn main() {
    same_cpu_active();
    different_cpu();
    sleeping_attacker();
}

/// The working configuration: same CPU, attacker stays active.
fn same_cpu_active() {
    println!("== same CPU, attacker active (the attack's requirement) ==");
    let mut m = SimMachine::new(MachineConfig::small(1));
    let attacker = m.spawn(CpuId(0));
    let victim = m.spawn(CpuId(0));

    let buf = m.mmap(attacker, 4).unwrap();
    m.fill(attacker, buf, 4 * PAGE_SIZE, 0xAA).unwrap();
    let target = buf + 2 * PAGE_SIZE;
    let released = m.translate(attacker, target).unwrap();
    println!("attacker touches 4 pages; page 2 is backed by frame {released}");

    m.munmap(attacker, target, 1).unwrap();
    println!("attacker munmaps page 2 and busy-waits (stays active)");

    let vbuf = m.mmap(victim, 1).unwrap();
    m.write(victim, vbuf, b"AES T-tables go here").unwrap();
    let got = m.translate(victim, vbuf).unwrap();
    println!("victim's first touch receives frame {got}");
    println!(
        "steered: {}\n",
        got.align_down(PAGE_SIZE) == released.align_down(PAGE_SIZE)
    );
}

/// Per-CPU caches do not leak across CPUs.
fn different_cpu() {
    println!("== victim on a different CPU (steering fails) ==");
    let mut m = SimMachine::new(MachineConfig::small(1));
    let attacker = m.spawn(CpuId(0));
    let victim = m.spawn(CpuId(1));

    let buf = m.mmap(attacker, 1).unwrap();
    m.write(attacker, buf, b"x").unwrap();
    let released = m.translate(attacker, buf).unwrap();
    m.munmap(attacker, buf, 1).unwrap();

    let vbuf = m.mmap(victim, 1).unwrap();
    m.write(victim, vbuf, b"y").unwrap();
    let got = m.translate(victim, vbuf).unwrap();
    println!("released {released}, victim got {got}");
    println!(
        "steered: {}\n",
        got.align_down(PAGE_SIZE) == released.align_down(PAGE_SIZE)
    );
}

/// The paper's caveat: a sleeping attacker loses its cached frame. Sleeping
/// releases the CPU, so (a) the idle kernel may drain the per-CPU lists and
/// (b) other processes get scheduled and consume whatever is cached.
fn sleeping_attacker() {
    println!("== attacker sleeps between release and victim arrival ==");
    use explframe::attack::NoiseProcess;
    use rand::SeedableRng;

    for (policy, label) in [
        (
            IdleDrainPolicy::DrainOnSleep,
            "kernel drains idle CPU caches (realistic)",
        ),
        (
            IdleDrainPolicy::Keep,
            "caches survive sleep (ablation)      ",
        ),
    ] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut m = SimMachine::new(MachineConfig::small(1).with_idle_drain(policy));
        let attacker = m.spawn(CpuId(0));

        let buf = m.mmap(attacker, 1).unwrap();
        m.write(attacker, buf, b"x").unwrap();
        let released = m.translate(attacker, buf).unwrap();
        m.munmap(attacker, buf, 1).unwrap();
        m.sleep(attacker, 10_000_000).unwrap(); // 10 ms nap

        // While the attacker sleeps, the CPU runs whoever else is ready.
        let mut other = NoiseProcess::spawn(&mut m, CpuId(0));
        for _ in 0..4 {
            other.burst(&mut m, &mut rng, 48).unwrap();
        }

        let victim = m.spawn(CpuId(0));
        let vbuf = m.mmap(victim, 1).unwrap();
        m.write(victim, vbuf, b"y").unwrap();
        let got = m.translate(victim, vbuf).unwrap();
        println!(
            "  {label}: steered = {}",
            got.align_down(PAGE_SIZE) == released.align_down(PAGE_SIZE)
        );
    }
    println!("\n\"the adversarial process must remain active rather than going into");
    println!(" inactive state (sleeping)\" — paper, §V");
}
