//! End-to-end ExplFrame attack on a simulated machine.
//!
//! Runs the full pipeline from the paper — templating, page-frame-cache
//! steering, targeted re-hammering, faulty-ciphertext collection and
//! Persistent Fault Analysis — and prints what happened at each step.
//!
//! ```text
//! cargo run --release --example quickstart [seed]
//! ```

use explframe::attack::{AttackOutcome, ExplFrame, ExplFrameConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    println!("== ExplFrame quickstart (seed {seed}) ==");
    println!("machine : 256 MiB DDR3, 4 CPUs, flippy weak-cell population");
    println!("victim  : AES-128 with an in-memory S-box table (PFA target shape)");
    println!("attacker: unprivileged process, 8 MiB templating buffer\n");

    let config = ExplFrameConfig::small_demo(seed).with_template_pages(2048);
    let attack = ExplFrame::new(config);

    let start = std::time::Instant::now();
    let report = match attack.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("attack failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "[1] templating  : {} flips found, {} usable against the S-box page",
        report.templates_found, report.usable_templates
    );
    println!(
        "[2] steering    : victim received the released frame in {}/{} rounds",
        report.steering_successes, report.fault_rounds
    );
    println!(
        "[3] hammering   : {} aggressor pairs spent in total",
        report.hammer_pairs_spent
    );
    println!(
        "[4] collection  : {} faulty ciphertexts observed",
        report.ciphertexts_collected
    );
    match (report.outcome, report.recovered_aes_key) {
        (AttackOutcome::KeyRecovered, Some(key)) => {
            println!("[5] analysis    : PFA recovered the AES-128 key:");
            println!("    key = {}", hex(&key));
            println!(
                "    verified against the victim's actual key: {}",
                report.key_correct
            );
        }
        (outcome, _) => println!("[5] analysis    : attack ended without a key ({outcome:?})"),
    }
    println!(
        "\nsimulated time: {:.1} ms   wall clock: {:.2} s",
        report.elapsed as f64 / 1e6,
        start.elapsed().as_secs_f64()
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
