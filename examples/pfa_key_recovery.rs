//! Offline Persistent Fault Analysis demo — no machine simulation needed.
//!
//! Reproduces the analysis half of the paper on its own: plant one bit flip
//! in a cipher's in-memory table, collect faulty ciphertexts, and watch the
//! missing-value statistics converge to the key. Covers AES-128 (S-box
//! shape), AES-128 (T-table shape, multi-fault) and PRESENT-80.
//!
//! ```text
//! cargo run --release --example pfa_key_recovery [seed]
//! ```

use explframe::ciphers::{
    present_sbox_image, BlockCipher, Present80, RamTableSource, SboxAes, TTableAes, TableImage,
    FINAL_ROUND_S_LANE, PRESENT_SBOX,
};
use explframe::fault::{PfaCollector, PresentPfa, TTablePfa, TableFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(99);
    let mut rng = StdRng::seed_from_u64(seed);

    aes_sbox_demo(&mut rng);
    aes_ttable_demo(&mut rng);
    present_demo(&mut rng);
}

fn aes_sbox_demo(rng: &mut StdRng) {
    println!("== PFA vs AES-128 (S-box table) ==");
    let key: [u8; 16] = rng.gen();
    let entry = rng.gen_range(0..256usize);
    let bit = rng.gen_range(0..8u8);
    println!("fault: S-box entry {entry:#04x}, bit {bit} (persistent)");

    let mut image = TableImage::sbox().to_vec();
    image[entry] ^= 1 << bit;
    let mut victim = SboxAes::new_128(&key, RamTableSource::new(image));

    let mut collector = PfaCollector::new();
    let mut milestones = vec![500u64, 1000, 1500, 2000, 3000];
    while !collector.all_positions_determined() {
        let mut block: [u8; 16] = rng.gen();
        victim.encrypt_block(&mut block);
        collector.observe(&block);
        if milestones.first() == Some(&collector.total()) {
            milestones.remove(0);
            println!(
                "  after {:>5} ciphertexts: {:>2}/16 key bytes determined",
                collector.total(),
                collector.determined_positions()
            );
        }
    }
    let analysis = collector.analyze_known_fault(TableImage::sbox()[entry]);
    let recovered = analysis.master_key().expect("all positions determined");
    println!(
        "  recovered after {} ciphertexts: {}  (correct: {})\n",
        analysis.ciphertexts(),
        hex(&recovered),
        recovered == key
    );
}

fn aes_ttable_demo(rng: &mut StdRng) {
    println!("== PFA vs AES-128 (T-table page, one fault per Te table) ==");
    let key: [u8; 16] = rng.gen();
    let mut driver = TTablePfa::new();
    for (table, s_lane) in FINAL_ROUND_S_LANE.iter().enumerate() {
        let entry = rng.gen_range(0..256usize);
        let offset = TableImage::te_entry_offset(table, entry) + s_lane;
        let bit = rng.gen_range(0..8u8);
        let fault = TableFault { offset, bit };

        let mut image = TableImage::te_tables();
        fault.apply(&mut image);
        let mut victim = TTableAes::new_128(&key, RamTableSource::new(image));

        let explframe::fault::TeFaultClass::SLane { positions, .. } = fault.classify_te() else {
            unreachable!("S-lane offsets are always exploitable");
        };
        let mut collector = PfaCollector::new();
        loop {
            let mut block: [u8; 16] = rng.gen();
            victim.encrypt_block(&mut block);
            collector.observe(&block);
            let missing = collector.missing_values();
            if positions.iter().all(|&p| missing[p].is_some()) {
                break;
            }
        }
        let covered = driver.absorb(fault, &collector).expect("S-lane fault");
        println!(
            "  fault in Te{table} entry {entry:#04x}: {} ciphertexts → key bytes {covered:?}",
            collector.total()
        );
    }
    let recovered = driver.master_key().expect("all four tables covered");
    println!(
        "  recovered: {}  (correct: {})\n",
        hex(&recovered),
        recovered == key
    );
}

fn present_demo(rng: &mut StdRng) {
    println!("== PFA vs PRESENT-80 (S-box table) ==");
    let key: [u8; 10] = rng.gen();
    let entry = rng.gen_range(0..16usize);
    let bit = rng.gen_range(0..4u8);
    println!("fault: S-box entry {entry:#x}, bit {bit}");

    let mut image = present_sbox_image().to_vec();
    image[entry] ^= 1 << bit;
    let mut victim = Present80::new(&key, RamTableSource::new(image));

    let mut pfa = PresentPfa::new();
    while !pfa.all_positions_determined() {
        let mut block: [u8; 8] = rng.gen();
        victim.encrypt_block(&mut block);
        pfa.observe(&block);
    }
    // One pre-fault pair authenticates the schedule inversion.
    let plain: [u8; 8] = rng.gen();
    let mut cipher = plain;
    Present80::new(&key, RamTableSource::new(present_sbox_image().to_vec()))
        .encrypt_block(&mut cipher);
    let recovered = pfa
        .recover_master_key(PRESENT_SBOX[entry], |cand| {
            let mut b = plain;
            Present80::new(cand, RamTableSource::new(present_sbox_image().to_vec()))
                .encrypt_block(&mut b);
            b == cipher
        })
        .expect("recovery");
    println!(
        "  recovered after {} ciphertexts (+2^16 schedule search): {}  (correct: {})",
        pfa.total(),
        hex(&recovered),
        recovered == key
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
