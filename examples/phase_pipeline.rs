//! The phase-pipeline API, composed by hand: template once, steer many.
//!
//! Demonstrates what the `Pipeline` makes possible beyond `ExplFrame::run`:
//! one templating sweep serves several victim restarts, because a stopped
//! victim's table frame returns to the page frame cache head where the next
//! steer picks it up again. Every phase reports a structured event; the
//! trace is printed at the end.
//!
//! ```text
//! cargo run --release --example phase_pipeline [seed]
//! ```

use explframe::attack::{ExplFrameConfig, Pipeline, TraceCollector};
use explframe::machine::SimMachine;

const VICTIMS: u32 = 3;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    println!("== phase pipeline: template once, steer {VICTIMS} victims (seed {seed}) ==\n");

    let config = ExplFrameConfig::small_demo(seed).with_template_pages(1024);
    let kind = config.victim;
    let mut machine = SimMachine::new(config.machine.clone());
    let mut trace = TraceCollector::new();
    let mut pipe = Pipeline::new(&mut machine, config).with_observer(&mut trace);

    // Phase 1+selection, paid once.
    let pool = pipe.template().expect("template phase");
    let mut remaining = pipe.select(&pool, kind);
    let Some(template) = pipe.next_template(&mut remaining, kind) else {
        eprintln!("no usable templates on this machine; try another seed");
        std::process::exit(1);
    };
    println!(
        "templated {} flips ({} usable), attacking page {} offset {} bit {}",
        pool.scan.templates.len(),
        remaining.len() + 1,
        template.page_index,
        template.page_offset,
        template.bit
    );

    // Phase 2, also paid once: the frame keeps coming back.
    let released = pipe.release(&pool, template).expect("release phase");

    let mut keys = 0;
    for round in 1..=VICTIMS {
        let steered = pipe.steer(&released).expect("steer phase");
        let victim = steered.victim;
        let mut recovered = None;
        if pipe.hammer(&pool, &steered).expect("hammer phase") {
            let faulted = pipe.collect(steered).expect("collect phase");
            recovered = pipe.analyze(faulted).expect("analyze phase");
        }
        let ok = recovered.is_some_and(|k| pipe.verify_key(kind, &k));
        keys += u32::from(ok);
        println!("victim {round}: key recovered = {ok}");
        pipe.stop_victim(victim).expect("victim stop");
        pipe.settle(); // let hammer disturbance refresh away before round+1
    }
    println!(
        "\n{keys}/{VICTIMS} keys from ONE templating sweep ({} hammer pairs total)",
        pipe.hammer_pairs_spent()
    );

    println!("\nevent trace ({} events):", trace.len());
    for event in trace.events() {
        println!("  {event:?}");
    }
}
