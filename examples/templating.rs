//! DRAM templating demo: profile a buffer for repeatable bit flips.
//!
//! Shows the unprivileged profiling phase in isolation: the attacker fills
//! its own buffer with test patterns, double-side hammers every row, and
//! reads its own memory back to locate flips — then re-hammers each
//! location to measure reproducibility (the property the paper's §VI calls
//! "high probability of getting bit flips in the same location").
//!
//! ```text
//! cargo run --release --example templating [seed] [pages]
//! ```

use explframe::attack::template_scan;
use explframe::machine::{MachineConfig, SimMachine};
use explframe::memsim::CpuId;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(11);
    let pages: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);

    println!(
        "== DRAM templating (seed {seed}, {} MiB buffer) ==\n",
        pages * 4096 / (1 << 20)
    );
    let mut machine = SimMachine::new(MachineConfig::small(seed));
    let attacker = machine.spawn(CpuId(0));
    let buffer = machine.mmap(attacker, pages).expect("mmap template buffer");

    let scan =
        template_scan(&mut machine, attacker, buffer, pages, 400_000, 5).expect("templating sweep");

    println!("rows hammered     : {}", scan.rows_hammered);
    println!("hammer rejections : {}", scan.hammer_failures);
    println!("flips templated   : {}", scan.templates.len());
    println!("simulated time    : {:.1} ms\n", scan.elapsed as f64 / 1e6);

    let one_to_zero = scan.templates.iter().filter(|t| t.one_to_zero).count();
    println!(
        "flip directions   : {} are 1→0 (true cells), {} are 0→1 (anti cells)",
        one_to_zero,
        scan.templates.len() - one_to_zero
    );

    let perfectly_reproducible = scan
        .templates
        .iter()
        .filter(|t| t.reproducibility >= 0.999)
        .count();
    println!(
        "reproducibility   : {}/{} templates re-flipped in every re-hammer round",
        perfectly_reproducible,
        scan.templates.len()
    );

    // Flip map: pages per bit position.
    let mut by_bit = [0usize; 8];
    for t in &scan.templates {
        by_bit[t.bit as usize] += 1;
    }
    println!("\nflips by bit index (0 = LSB):");
    for (bit, count) in by_bit.iter().enumerate() {
        println!("  bit {bit}: {count:4} {}", "#".repeat(*count.min(&60)));
    }

    println!("\nfirst templates:");
    for t in scan.templates.iter().take(8) {
        println!(
            "  page {:>5}  offset {:>4}  bit {}  {}  repro {:.2}",
            t.page_index,
            t.page_offset,
            t.bit,
            if t.one_to_zero { "1->0" } else { "0->1" },
            t.reproducibility
        );
    }
}
