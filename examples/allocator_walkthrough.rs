//! Narrated walk through the Linux physical-memory allocator simulator —
//! the paper's Figures 1 and 2 brought to life.
//!
//! Part 1 replays the buddy allocator's split/coalesce behaviour (Figure 1,
//! §IV's 1 MiB example). Part 2 dumps the zoned allocator's structure
//! (Figure 2) and demonstrates the per-CPU page frame cache property that
//! the attack exploits (§V).
//!
//! ```text
//! cargo run --release --example allocator_walkthrough
//! ```

use explframe::memsim::{
    BuddyAllocator, CpuId, EventKind, MemConfig, Order, Pfn, PfnRange, ServedFrom, ZonedAllocator,
};

fn main() {
    figure1_buddy();
    figure2_zoned();
    pcp_property();
}

fn free_list_picture(b: &BuddyAllocator) -> String {
    (0..=10u8)
        .map(|o| format!("{}", b.free_blocks(Order(o))))
        .collect::<Vec<_>>()
        .join(" ")
}

fn figure1_buddy() {
    println!("== Figure 1: the buddy allocation scheme ==\n");
    let mut buddy = BuddyAllocator::new(PfnRange::new(Pfn(0), Pfn(1024)));
    println!("4 MiB of frames, all free. Free blocks per order 0..10:");
    println!("  [{}]", free_list_picture(&buddy));

    println!("\nA 1 MiB request (order 8, 256 frames) splits the 4 MiB block:");
    let big = buddy.alloc(Order(8)).expect("fresh allocator");
    println!("  allocated {big} ({} splits so far)", buddy.stats().splits);
    println!("  [{}]", free_list_picture(&buddy));

    println!("\nA single-page request carves further:");
    let small = buddy.alloc(Order(0)).expect("plenty free");
    println!(
        "  allocated {small} ({} splits so far)",
        buddy.stats().splits
    );
    println!("  [{}]", free_list_picture(&buddy));

    println!("\nFreeing both: buddies coalesce back to one 4 MiB block:");
    buddy.free(small).expect("live block");
    buddy.free(big).expect("live block");
    println!(
        "  [{}]  ({} merges performed)",
        free_list_picture(&buddy),
        buddy.stats().merges
    );
    buddy.check_invariants().expect("canonical state");
    println!();
}

fn figure2_zoned() {
    println!("== Figure 2: components of the zoned page frame allocator ==\n");
    let mut alloc = ZonedAllocator::new(MemConfig::small_256mib());
    // Create some traffic so the structures are populated.
    let mut held = Vec::new();
    for cpu in 0..4u32 {
        for _ in 0..6 {
            held.push((CpuId(cpu), alloc.alloc_pages(CpuId(cpu), Order(0)).unwrap()));
        }
    }
    for (cpu, pfn) in held.drain(..) {
        alloc.free_pages(cpu, pfn).unwrap();
    }

    println!("node 0");
    for zone in alloc.zones() {
        let span = zone.span();
        println!(
            "└─ {:<12} frames {:>7}..{:<7} ({:>4} MiB)  free {:>6}  watermarks min/low/high = {}/{}/{}",
            zone.kind().to_string(),
            span.start.0,
            span.end.0,
            span.len() * 4096 / (1 << 20),
            zone.free_pages(),
            zone.watermarks().min,
            zone.watermarks().low,
            zone.watermarks().high,
        );
        println!(
            "   ├─ buddy free lists (order 0..10): [{}]",
            free_list_picture(zone.buddy())
        );
        for cpu in 0..alloc.cpu_count() {
            let pcp = zone.pcp(CpuId(cpu));
            println!(
                "   ├─ cpu{cpu} page frame cache: {:>3} frames cached (batch {}, high {})",
                pcp.len(),
                pcp.config().batch,
                pcp.config().high,
            );
        }
    }
    println!();
}

fn pcp_property() {
    println!("== §V: the property the attack exploits ==\n");
    let mut alloc = ZonedAllocator::new(MemConfig::small_256mib());
    alloc.trace_mut().set_enabled(true);
    let cpu = CpuId(0);

    let frame = alloc.alloc_pages(cpu, Order(0)).unwrap();
    println!("process A allocates one page           → {frame}");
    alloc.free_pages(cpu, frame).unwrap();
    println!("process A frees it (munmap)            → head of cpu0's page frame cache");
    let again = alloc.alloc_pages(cpu, Order(0)).unwrap();
    println!("process B (same CPU) allocates a page  → {again}");
    println!(
        "same frame handed across processes     : {}",
        if frame == again {
            "YES — the steering channel"
        } else {
            "no"
        }
    );

    let other = alloc.alloc_pages(CpuId(1), Order(0)).unwrap();
    println!("process C (cpu1) allocates a page      → {other} (different: caches are per-CPU)");

    println!("\nallocator event trace:");
    for event in alloc.trace().iter() {
        let what = match event.kind {
            EventKind::Alloc {
                pfn,
                served: ServedFrom::PcpCache,
                ..
            } => {
                format!("alloc {pfn} ← page frame cache")
            }
            EventKind::Alloc {
                pfn,
                served: ServedFrom::Buddy,
                ..
            } => {
                format!("alloc {pfn} ← buddy (with refill)")
            }
            EventKind::Free {
                pfn,
                to: ServedFrom::PcpCache,
                ..
            } => {
                format!("free  {pfn} → page frame cache head")
            }
            EventKind::Free { pfn, .. } => format!("free  {pfn} → buddy"),
            EventKind::PcpRefill { count } => format!("pcp refill of {count} frames from buddy"),
            EventKind::PcpDrain { count } => format!("pcp drain of {count} frames to buddy"),
            EventKind::Reclaim => "direct reclaim pass".to_string(),
        };
        println!(
            "  [{:>3}] {} {:<11} {}",
            event.seq,
            event.cpu,
            event.zone.to_string(),
            what
        );
    }
}
