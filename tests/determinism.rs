//! Seeded determinism of the whole attack pipeline.
//!
//! Every stage of ExplFrame draws randomness through seeded `StdRng`
//! instances (weak-cell placement, templating order, plaintext queries). If
//! any stage ever reads an unseeded source — or iterates a non-deterministic
//! container — repeated runs diverge and every experiment in `crates/bench`
//! stops being reproducible. These tests pin the contract: same seed, same
//! bytes out; different seed, different flip population.

use explframe::attack::{template_scan, AttackReport, ExplFrame, ExplFrameConfig};
use explframe::machine::SimMachine;
use explframe::memsim::CpuId;

fn run_with_seed(seed: u64) -> AttackReport {
    let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(1024);
    ExplFrame::new(cfg).run().expect("attack run completes")
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    let first = run_with_seed(1);
    let second = run_with_seed(1);
    // Full structural equality: outcome, template counts, steering and
    // hammer tallies, ciphertext count, recovered keys, simulated time.
    assert_eq!(first, second, "two runs with the same seed diverged");
}

#[test]
fn different_seeds_diverge() {
    // Different machine seeds produce different weak-cell populations, so
    // *some* observable part of the report must differ. Checking a tuple of
    // the coarse counters keeps this robust to incidental equalities in any
    // single field.
    let a = run_with_seed(2);
    let b = run_with_seed(3);
    assert_ne!(
        (
            a.templates_found,
            a.hammer_pairs_spent,
            a.ciphertexts_collected,
            a.elapsed
        ),
        (
            b.templates_found,
            b.hammer_pairs_spent,
            b.ciphertexts_collected,
            b.elapsed
        ),
        "seeds 2 and 3 produced indistinguishable runs"
    );
}

#[test]
fn template_scan_is_deterministic() {
    let scan = |seed: u64| {
        let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(512);
        let mut machine = SimMachine::new(cfg.machine.clone());
        let pid = machine.spawn(CpuId(0));
        let base = machine
            .mmap(pid, cfg.template_pages)
            .expect("mmap template buffer");
        template_scan(
            &mut machine,
            pid,
            base,
            cfg.template_pages,
            cfg.hammer_pairs,
            cfg.reproducibility_rounds,
        )
        .expect("template scan completes")
    };
    let first = scan(7);
    let second = scan(7);
    assert_eq!(first, second, "same-seed template scans diverged");
    assert_eq!(first.templates, second.templates, "flip templates diverged");
}
