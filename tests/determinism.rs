//! Seeded determinism of the whole attack pipeline.
//!
//! Every stage of ExplFrame draws randomness through seeded `StdRng`
//! instances (weak-cell placement, templating order, plaintext queries). If
//! any stage ever reads an unseeded source — or iterates a non-deterministic
//! container — repeated runs diverge and every experiment in `crates/bench`
//! stops being reproducible. These tests pin the contract: same seed, same
//! bytes out; different seed, different flip population.

use explframe::attack::{
    template_scan, AttackReport, ExplFrame, ExplFrameConfig, VictimCipherKind,
};
use explframe::dram::{EccMode, TrrParams};
use explframe::machine::SimMachine;
use explframe::memsim::CpuId;

fn run_with_seed(seed: u64) -> AttackReport {
    let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(1024);
    ExplFrame::new(cfg).run().expect("attack run completes")
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    let first = run_with_seed(1);
    let second = run_with_seed(1);
    // Full structural equality: outcome, template counts, steering and
    // hammer tallies, ciphertext count, recovered keys, simulated time.
    assert_eq!(first, second, "two runs with the same seed diverged");
}

#[test]
fn different_seeds_diverge() {
    // Different machine seeds produce different weak-cell populations, so
    // *some* observable part of the report must differ. Checking a tuple of
    // the coarse counters keeps this robust to incidental equalities in any
    // single field.
    let a = run_with_seed(2);
    let b = run_with_seed(3);
    assert_ne!(
        (
            a.templates_found,
            a.hammer_pairs_spent,
            a.ciphertexts_collected,
            a.elapsed
        ),
        (
            b.templates_found,
            b.hammer_pairs_spent,
            b.ciphertexts_collected,
            b.elapsed
        ),
        "seeds 2 and 3 produced indistinguishable runs"
    );
}

#[test]
fn pipeline_reproduces_the_pre_redesign_report_bytes() {
    // Recorded from the monolithic driver immediately before the
    // phase-pipeline redesign (seed 1, 1024 template pages). The redesign's
    // contract is byte-for-byte identity, not mere plausibility — if any of
    // these move, the pipeline changed the attack's observable behaviour.
    let report = run_with_seed(1);
    assert_eq!(
        report.outcome,
        explframe::attack::AttackOutcome::KeyRecovered
    );
    assert_eq!(report.templates_found, 297);
    assert_eq!(report.usable_templates, 6);
    assert_eq!(report.steering_successes, 1);
    assert_eq!(report.fault_rounds, 1);
    assert_eq!(report.ciphertexts_collected, 2176);
    assert_eq!(report.hammer_pairs_spent, 753_600_000);
    assert_eq!(
        report.recovered_aes_key,
        Some([104, 1, 40, 17, 13, 177, 124, 200, 38, 249, 157, 193, 49, 244, 29, 167])
    );
    assert!(report.key_correct);
    assert_eq!(report.elapsed, 126_353_601_538);
}

#[test]
fn snapshot_forked_attack_is_byte_identical_to_fresh_boot_for_every_victim() {
    // The snapshot/fork differential guarantee, end to end: for every
    // shipped victim cipher, running the full attack on a machine forked
    // from a boot-time snapshot produces an AttackReport byte-identical to
    // the same seed on a freshly booted machine. This is what lets the
    // warm-pool campaign path replace per-trial boots without changing a
    // single reported number.
    for victim in [
        VictimCipherKind::AesSbox,
        VictimCipherKind::AesTtable,
        VictimCipherKind::Present,
    ] {
        for seed in [1, 5] {
            let cfg = ExplFrameConfig::small_demo(seed)
                .with_template_pages(1024)
                .with_victim(victim);
            let fresh = ExplFrame::new(cfg.clone()).run().expect("fresh run");
            let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
            let forked = ExplFrame::new(cfg)
                .run_snapshot(&snapshot)
                .expect("forked run");
            assert_eq!(
                forked, fresh,
                "forked report diverged (victim {victim:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn snapshot_forked_adaptive_attack_matches_fresh_boot_under_trr() {
    // Same differential, through the adaptive (strategy-escalating) driver
    // against a TRR-hardened module — the snapshot must carry the sampler
    // state faithfully enough that escalation happens identically.
    let mut cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_trr(Some(TrrParams::ddr4_like().with_sampler_size(2)));
    let fresh = ExplFrame::new(cfg.clone())
        .run_adaptive()
        .expect("fresh adaptive run");
    let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
    let forked = ExplFrame::new(cfg)
        .run_adaptive_snapshot(&snapshot)
        .expect("forked adaptive run");
    assert_eq!(forked, fresh, "forked adaptive report diverged");
    assert_eq!(
        fresh.strategy_escalations, 1,
        "test must exercise the escalation path"
    );
}

#[test]
fn snapshot_forked_run_reproduces_the_pinned_seed1_report_bytes() {
    // The forked path must hit the exact golden bytes pinned for the fresh
    // path (seed 1, 1024 template pages) — not merely agree with whatever
    // the fresh path currently produces.
    let cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
    let report = ExplFrame::new(cfg)
        .run_snapshot(&snapshot)
        .expect("forked run");
    assert_eq!(
        report.outcome,
        explframe::attack::AttackOutcome::KeyRecovered
    );
    assert_eq!(report.templates_found, 297);
    assert_eq!(report.usable_templates, 6);
    assert_eq!(report.fault_rounds, 1);
    assert_eq!(report.ciphertexts_collected, 2176);
    assert_eq!(report.hammer_pairs_spent, 753_600_000);
    assert_eq!(report.elapsed, 126_353_601_538);
    assert!(report.key_correct);
}

#[test]
fn snapshot_of_warm_machine_replays_attack_identically_after_mutation() {
    // Warm-pool shape: warm the machine, snapshot, let the original machine
    // diverge arbitrarily — the fork must still replay the attack the warm
    // state implies, untouched by the divergence (copy-on-write isolation).
    let cfg = ExplFrameConfig::small_demo(3).with_template_pages(512);
    let mut warm = SimMachine::new(cfg.machine.clone());
    explframe::machine::warmup(&mut warm, explframe::machine::WARMUP_PAGES).expect("warmup");
    let snapshot = warm.snapshot();

    let reference = ExplFrame::new(cfg.clone())
        .run_on(&mut snapshot.fork())
        .expect("reference run");
    // Divergence: the original machine keeps running a whole other attack.
    let _ = ExplFrame::new(cfg.clone())
        .run_on(&mut warm)
        .expect("noise");
    let replay = ExplFrame::new(cfg)
        .run_snapshot(&snapshot)
        .expect("replay run");
    assert_eq!(
        replay, reference,
        "mutating the original leaked into a fork"
    );
}

#[test]
fn attack_reports_are_identical_across_campaign_thread_counts() {
    use explframe::campaign::{scenario, Campaign};
    // The whole pipeline run as campaign trials: reducing on 1 worker and
    // on 8 must yield byte-identical AttackReports in identical order.
    let cells = vec![scenario("explframe-e2e", |seed| {
        let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(512);
        ExplFrame::new(cfg).run().expect("attack run completes")
    })];
    let serial = Campaign::new(3, 11).with_threads(1).run(&cells);
    let parallel = Campaign::new(3, 11).with_threads(8).run(&cells);
    assert_eq!(
        serial.cells, parallel.cells,
        "thread count changed a pipeline report"
    );
}

#[test]
fn fast_kernels_match_reference_kernels_for_every_victim() {
    // The raw-speed pass (bitsliced weak-cell crossing masks, the analytic
    // hammer fast-forward, the single-byte read path) must be invisible in
    // every reported number. Pin that differentially: the same attack with
    // the device forced onto the scalar per-cell reference kernels
    // (`DramConfig::reference_kernels`) must produce a byte-identical
    // AttackReport for every shipped victim cipher.
    for victim in [
        VictimCipherKind::AesSbox,
        VictimCipherKind::AesTtable,
        VictimCipherKind::Present,
    ] {
        let cfg = ExplFrameConfig::small_demo(1)
            .with_template_pages(1024)
            .with_victim(victim);
        let mut oracle_cfg = cfg.clone();
        oracle_cfg.machine.dram = oracle_cfg.machine.dram.with_reference_kernels(true);
        let fast = ExplFrame::new(cfg).run().expect("fast-kernel run");
        let oracle = ExplFrame::new(oracle_cfg)
            .run()
            .expect("reference-kernel run");
        assert_eq!(
            fast, oracle,
            "fast kernels changed the report (victim {victim:?})"
        );
    }
}

#[test]
fn fast_kernels_match_reference_kernels_under_trr_and_ecc() {
    // Same differential through the adaptive driver with both
    // countermeasures armed: a small-sampler TRR engine (forcing the
    // escalation path, whose burst planning interleaves with the
    // fast-forward) and SECDED ECC with the ECC-aware collector (whose
    // read path uses the skip-clean batching). Every fast path must agree
    // with the scalar reference under the richest interaction of features.
    let mut cfg = ExplFrameConfig::small_demo(1)
        .with_template_pages(1024)
        .with_ecc_aware(true);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_trr(Some(TrrParams::ddr4_like().with_sampler_size(2)))
        .with_ecc(EccMode::Secded);
    let mut oracle_cfg = cfg.clone();
    oracle_cfg.machine.dram = oracle_cfg.machine.dram.with_reference_kernels(true);
    let fast = ExplFrame::new(cfg)
        .run_adaptive()
        .expect("fast-kernel adaptive run");
    let oracle = ExplFrame::new(oracle_cfg)
        .run_adaptive()
        .expect("reference-kernel adaptive run");
    assert_eq!(
        fast, oracle,
        "fast kernels changed the adaptive report under TRR + ECC"
    );
    assert_eq!(
        fast.strategy_escalations, 1,
        "test must exercise the escalation path"
    );
}

#[test]
fn template_scan_is_deterministic() {
    let scan = |seed: u64| {
        let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(512);
        let mut machine = SimMachine::new(cfg.machine.clone());
        let pid = machine.spawn(CpuId(0));
        let base = machine
            .mmap(pid, cfg.template_pages)
            .expect("mmap template buffer");
        template_scan(
            &mut machine,
            pid,
            base,
            cfg.template_pages,
            cfg.hammer_pairs,
            cfg.reproducibility_rounds,
        )
        .expect("template scan completes")
    };
    let first = scan(7);
    let second = scan(7);
    assert_eq!(first, second, "same-seed template scans diverged");
    assert_eq!(first.templates, second.templates, "flip templates diverged");
}
