//! Seeded determinism of the whole attack pipeline.
//!
//! Every stage of ExplFrame draws randomness through seeded `StdRng`
//! instances (weak-cell placement, templating order, plaintext queries). If
//! any stage ever reads an unseeded source — or iterates a non-deterministic
//! container — repeated runs diverge and every experiment in `crates/bench`
//! stops being reproducible. These tests pin the contract: same seed, same
//! bytes out; different seed, different flip population.

use explframe::attack::{
    template_scan, AttackReport, ExplFrame, ExplFrameConfig, VictimCipherKind,
};
use explframe::dram::{EccMode, TrrParams};
use explframe::machine::SimMachine;
use explframe::memsim::CpuId;

fn run_with_seed(seed: u64) -> AttackReport {
    let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(1024);
    ExplFrame::new(cfg).run().expect("attack run completes")
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    let first = run_with_seed(1);
    let second = run_with_seed(1);
    // Full structural equality: outcome, template counts, steering and
    // hammer tallies, ciphertext count, recovered keys, simulated time.
    assert_eq!(first, second, "two runs with the same seed diverged");
}

#[test]
fn different_seeds_diverge() {
    // Different machine seeds produce different weak-cell populations, so
    // *some* observable part of the report must differ. Checking a tuple of
    // the coarse counters keeps this robust to incidental equalities in any
    // single field.
    let a = run_with_seed(2);
    let b = run_with_seed(3);
    assert_ne!(
        (
            a.templates_found,
            a.hammer_pairs_spent,
            a.ciphertexts_collected,
            a.elapsed
        ),
        (
            b.templates_found,
            b.hammer_pairs_spent,
            b.ciphertexts_collected,
            b.elapsed
        ),
        "seeds 2 and 3 produced indistinguishable runs"
    );
}

#[test]
fn pipeline_reproduces_the_pre_redesign_report_bytes() {
    // Recorded from the monolithic driver immediately before the
    // phase-pipeline redesign (seed 1, 1024 template pages). The redesign's
    // contract is byte-for-byte identity, not mere plausibility — if any of
    // these move, the pipeline changed the attack's observable behaviour.
    let report = run_with_seed(1);
    assert_eq!(
        report.outcome,
        explframe::attack::AttackOutcome::KeyRecovered
    );
    assert_eq!(report.templates_found, 297);
    assert_eq!(report.usable_templates, 6);
    assert_eq!(report.steering_successes, 1);
    assert_eq!(report.fault_rounds, 1);
    assert_eq!(report.ciphertexts_collected, 2176);
    assert_eq!(report.hammer_pairs_spent, 753_600_000);
    assert_eq!(
        report.recovered_aes_key,
        Some([104, 1, 40, 17, 13, 177, 124, 200, 38, 249, 157, 193, 49, 244, 29, 167])
    );
    assert!(report.key_correct);
    assert_eq!(report.elapsed, 126_353_601_538);
}

#[test]
fn snapshot_forked_attack_is_byte_identical_to_fresh_boot_for_every_victim() {
    // The snapshot/fork differential guarantee, end to end: for every
    // shipped victim cipher, running the full attack on a machine forked
    // from a boot-time snapshot produces an AttackReport byte-identical to
    // the same seed on a freshly booted machine. This is what lets the
    // warm-pool campaign path replace per-trial boots without changing a
    // single reported number.
    for victim in [
        VictimCipherKind::AesSbox,
        VictimCipherKind::AesTtable,
        VictimCipherKind::Present,
    ] {
        for seed in [1, 5] {
            let cfg = ExplFrameConfig::small_demo(seed)
                .with_template_pages(1024)
                .with_victim(victim);
            let fresh = ExplFrame::new(cfg.clone()).run().expect("fresh run");
            let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
            let forked = ExplFrame::new(cfg)
                .run_snapshot(&snapshot)
                .expect("forked run");
            assert_eq!(
                forked, fresh,
                "forked report diverged (victim {victim:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn snapshot_forked_adaptive_attack_matches_fresh_boot_under_trr() {
    // Same differential, through the adaptive (strategy-escalating) driver
    // against a TRR-hardened module — the snapshot must carry the sampler
    // state faithfully enough that escalation happens identically.
    let mut cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_trr(Some(TrrParams::ddr4_like().with_sampler_size(2)));
    let fresh = ExplFrame::new(cfg.clone())
        .run_adaptive()
        .expect("fresh adaptive run");
    let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
    let forked = ExplFrame::new(cfg)
        .run_adaptive_snapshot(&snapshot)
        .expect("forked adaptive run");
    assert_eq!(forked, fresh, "forked adaptive report diverged");
    assert_eq!(
        fresh.strategy_escalations, 1,
        "test must exercise the escalation path"
    );
}

#[test]
fn snapshot_forked_run_reproduces_the_pinned_seed1_report_bytes() {
    // The forked path must hit the exact golden bytes pinned for the fresh
    // path (seed 1, 1024 template pages) — not merely agree with whatever
    // the fresh path currently produces.
    let cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
    let report = ExplFrame::new(cfg)
        .run_snapshot(&snapshot)
        .expect("forked run");
    assert_eq!(
        report.outcome,
        explframe::attack::AttackOutcome::KeyRecovered
    );
    assert_eq!(report.templates_found, 297);
    assert_eq!(report.usable_templates, 6);
    assert_eq!(report.fault_rounds, 1);
    assert_eq!(report.ciphertexts_collected, 2176);
    assert_eq!(report.hammer_pairs_spent, 753_600_000);
    assert_eq!(report.elapsed, 126_353_601_538);
    assert!(report.key_correct);
}

#[test]
fn snapshot_of_warm_machine_replays_attack_identically_after_mutation() {
    // Warm-pool shape: warm the machine, snapshot, let the original machine
    // diverge arbitrarily — the fork must still replay the attack the warm
    // state implies, untouched by the divergence (copy-on-write isolation).
    let cfg = ExplFrameConfig::small_demo(3).with_template_pages(512);
    let mut warm = SimMachine::new(cfg.machine.clone());
    explframe::machine::warmup(&mut warm, explframe::machine::WARMUP_PAGES).expect("warmup");
    let snapshot = warm.snapshot();

    let reference = ExplFrame::new(cfg.clone())
        .run_on(&mut snapshot.fork())
        .expect("reference run");
    // Divergence: the original machine keeps running a whole other attack.
    let _ = ExplFrame::new(cfg.clone())
        .run_on(&mut warm)
        .expect("noise");
    let replay = ExplFrame::new(cfg)
        .run_snapshot(&snapshot)
        .expect("replay run");
    assert_eq!(
        replay, reference,
        "mutating the original leaked into a fork"
    );
}

#[test]
fn attack_reports_are_identical_across_campaign_thread_counts() {
    use explframe::campaign::{scenario, Campaign};
    // The whole pipeline run as campaign trials: reducing on 1 worker and
    // on 8 must yield byte-identical AttackReports in identical order.
    let cells = vec![scenario("explframe-e2e", |seed| {
        let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(512);
        ExplFrame::new(cfg).run().expect("attack run completes")
    })];
    let serial = Campaign::new(3, 11).with_threads(1).run(&cells);
    let parallel = Campaign::new(3, 11).with_threads(8).run(&cells);
    assert_eq!(
        serial.cells, parallel.cells,
        "thread count changed a pipeline report"
    );
}

#[test]
fn fast_kernels_match_reference_kernels_for_every_victim() {
    // The raw-speed pass (bitsliced weak-cell crossing masks, the analytic
    // hammer fast-forward, the single-byte read path) must be invisible in
    // every reported number. Pin that differentially: the same attack with
    // the device forced onto the scalar per-cell reference kernels
    // (`DramConfig::reference_kernels`) must produce a byte-identical
    // AttackReport for every shipped victim cipher.
    for victim in [
        VictimCipherKind::AesSbox,
        VictimCipherKind::AesTtable,
        VictimCipherKind::Present,
    ] {
        let cfg = ExplFrameConfig::small_demo(1)
            .with_template_pages(1024)
            .with_victim(victim);
        let mut oracle_cfg = cfg.clone();
        oracle_cfg.machine.dram = oracle_cfg.machine.dram.with_reference_kernels(true);
        let fast = ExplFrame::new(cfg).run().expect("fast-kernel run");
        let oracle = ExplFrame::new(oracle_cfg)
            .run()
            .expect("reference-kernel run");
        assert_eq!(
            fast, oracle,
            "fast kernels changed the report (victim {victim:?})"
        );
    }
}

#[test]
fn fast_kernels_match_reference_kernels_under_trr_and_ecc() {
    // Same differential through the adaptive driver with both
    // countermeasures armed: a small-sampler TRR engine (forcing the
    // escalation path, whose burst planning interleaves with the
    // fast-forward) and SECDED ECC with the ECC-aware collector (whose
    // read path uses the skip-clean batching). Every fast path must agree
    // with the scalar reference under the richest interaction of features.
    let mut cfg = ExplFrameConfig::small_demo(1)
        .with_template_pages(1024)
        .with_ecc_aware(true);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_trr(Some(TrrParams::ddr4_like().with_sampler_size(2)))
        .with_ecc(EccMode::Secded);
    let mut oracle_cfg = cfg.clone();
    oracle_cfg.machine.dram = oracle_cfg.machine.dram.with_reference_kernels(true);
    let fast = ExplFrame::new(cfg)
        .run_adaptive()
        .expect("fast-kernel adaptive run");
    let oracle = ExplFrame::new(oracle_cfg)
        .run_adaptive()
        .expect("reference-kernel adaptive run");
    assert_eq!(
        fast, oracle,
        "fast kernels changed the adaptive report under TRR + ECC"
    );
    assert_eq!(
        fast.strategy_escalations, 1,
        "test must exercise the escalation path"
    );
}

#[test]
fn template_scan_is_deterministic() {
    let scan = |seed: u64| {
        let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(512);
        let mut machine = SimMachine::new(cfg.machine.clone());
        let pid = machine.spawn(CpuId(0));
        let base = machine
            .mmap(pid, cfg.template_pages)
            .expect("mmap template buffer");
        template_scan(
            &mut machine,
            pid,
            base,
            cfg.template_pages,
            cfg.hammer_pairs,
            cfg.reproducibility_rounds,
        )
        .expect("template scan completes")
    };
    let first = scan(7);
    let second = scan(7);
    assert_eq!(first, second, "same-seed template scans diverged");
    assert_eq!(first.templates, second.templates, "flip templates diverged");
}

// ---------------------------------------------------------------------------
// Walk-mode battery: the same contracts with page tables resident in DRAM.
// ---------------------------------------------------------------------------

fn walk_config(seed: u64) -> ExplFrameConfig {
    ExplFrameConfig::small_demo(seed)
        .with_template_pages(1024)
        .with_dram_page_tables(true)
}

#[test]
fn walk_mode_attack_is_deterministic_and_reproduces_pinned_bytes() {
    // Recorded when the phase pipeline first ran end to end on a
    // DRAM-resident-page-table machine (seed 1, 1024 template pages). The
    // numbers differ from the shadow goldens exactly where walk mode says
    // they should: one extra frame consumed during templating shifts the
    // weak-cell overlap slightly (298 vs 297 raw templates), the victim's
    // table allocations and walk traffic cost extra hammer pairs and time.
    let first = ExplFrame::new(walk_config(1)).run().expect("walk run");
    let second = ExplFrame::new(walk_config(1)).run().expect("walk run");
    assert_eq!(first, second, "same-seed walk runs diverged");
    assert_eq!(
        first.outcome,
        explframe::attack::AttackOutcome::KeyRecovered
    );
    assert_eq!(first.templates_found, 298);
    assert_eq!(first.usable_templates, 4);
    assert_eq!(first.steering_successes, 1);
    assert_eq!(first.fault_rounds, 1);
    assert_eq!(first.ciphertexts_collected, 2176);
    assert_eq!(first.hammer_pairs_spent, 754_800_000);
    assert_eq!(
        first.recovered_aes_key,
        Some([104, 1, 40, 17, 13, 177, 124, 200, 38, 249, 157, 193, 49, 244, 29, 167])
    );
    assert!(first.key_correct);
    assert_eq!(first.elapsed, 126_656_028_659);
}

#[test]
fn walk_mode_flag_off_is_byte_identical_to_the_default_config() {
    // `with_dram_page_tables(false)` must be a true no-op: the explicit-off
    // report carries the exact pre-walk golden bytes (pinned above in
    // `pipeline_reproduces_the_pre_redesign_report_bytes`).
    let explicit_off = ExplFrameConfig::small_demo(1)
        .with_template_pages(1024)
        .with_dram_page_tables(false);
    let report = ExplFrame::new(explicit_off).run().expect("shadow run");
    assert_eq!(
        report,
        run_with_seed(1),
        "flag-off run diverged from default"
    );
    assert_eq!(report.templates_found, 297);
    assert_eq!(report.hammer_pairs_spent, 753_600_000);
    assert_eq!(report.elapsed, 126_353_601_538);
}

#[test]
fn walk_mode_snapshot_fork_matches_fresh_boot() {
    // Snapshot/fork fidelity with mid-attack table state: the fork carries
    // the table frames, the TLB contents, and the walk-traffic history into
    // byte-identical reports for every victim cipher.
    for victim in [
        VictimCipherKind::AesSbox,
        VictimCipherKind::AesTtable,
        VictimCipherKind::Present,
    ] {
        let cfg = walk_config(1).with_victim(victim);
        let fresh = ExplFrame::new(cfg.clone()).run().expect("fresh walk run");
        let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
        let forked = ExplFrame::new(cfg)
            .run_snapshot(&snapshot)
            .expect("forked walk run");
        assert_eq!(forked, fresh, "walk-mode fork diverged (victim {victim:?})");
    }
}

#[test]
fn walk_mode_memoized_template_runs_match_uncached() {
    // The sweep memo keyed with table-frame state: a second walk trial from
    // the same warm snapshot replays the sweep from the memo and still
    // produces byte-identical reports.
    use explframe::attack::TemplateMemo;
    let cfg = walk_config(1);
    let warm = SimMachine::new(cfg.machine.clone()).snapshot();
    let mut memo = TemplateMemo::new();
    let first = ExplFrame::new(cfg.clone())
        .run_snapshot_memo(&warm, &mut memo)
        .expect("first memoized walk run");
    let second = ExplFrame::new(cfg)
        .run_snapshot_memo(&warm, &mut memo)
        .expect("second memoized walk run");
    assert_eq!(first, second, "memo replay changed a walk report");
    assert_eq!(memo.hits(), 1, "second trial must hit the memo");
}

#[test]
fn walk_mode_adaptive_escalates_through_trr_and_recovers_key() {
    // The adaptive driver on a walk machine against a sampling TRR: the
    // double-sided sweep is suppressed, the driver escalates to many-sided,
    // and the key still comes out — with the page-table walk traffic feeding
    // the same TRR sampler the hammer is trying to thrash. Forked replay
    // must agree byte for byte.
    let mut cfg = ExplFrameConfig::small_demo(1)
        .with_template_pages(512)
        .with_many_sided_rows(8)
        .with_dram_page_tables(true);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_trr(Some(TrrParams::ddr4_like().with_sampler_size(2)));
    let fresh = ExplFrame::new(cfg.clone())
        .run_adaptive()
        .expect("adaptive walk run");
    assert_eq!(fresh.strategy_escalations, 1, "must exercise escalation");
    assert!(
        fresh.key_correct,
        "escalated walk attack must recover the key"
    );
    let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
    let forked = ExplFrame::new(cfg)
        .run_adaptive_snapshot(&snapshot)
        .expect("forked adaptive walk run");
    assert_eq!(forked, fresh, "forked adaptive walk report diverged");
}

#[test]
fn walk_mode_adaptive_under_trr_and_ecc_completes_deterministically() {
    // Both countermeasures armed on a walk machine: SECDED corrects every
    // single-bit templating flip (exactly as in shadow mode), so the run
    // ends keyless after one escalation — but it must end *identically*
    // across fresh and forked executions, never panic mid-phase.
    let mut cfg = walk_config(1).with_ecc_aware(true);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_trr(Some(TrrParams::ddr4_like().with_sampler_size(2)))
        .with_ecc(EccMode::Secded);
    let fresh = ExplFrame::new(cfg.clone())
        .run_adaptive()
        .expect("adaptive walk run under TRR+ECC");
    assert_eq!(fresh.strategy_escalations, 1);
    let snapshot = SimMachine::new(cfg.machine.clone()).snapshot();
    let forked = ExplFrame::new(cfg)
        .run_adaptive_snapshot(&snapshot)
        .expect("forked adaptive walk run under TRR+ECC");
    assert_eq!(forked, fresh, "TRR+ECC walk report diverged across forks");
}

#[test]
fn walk_mode_reports_are_identical_across_campaign_thread_counts() {
    use explframe::campaign::{scenario, Campaign};
    // The exp_t16 shape: full walk-mode attacks as campaign trials must
    // reduce to byte-identical reports regardless of worker count.
    let cells = vec![scenario("walk-e2e", |seed| {
        let cfg = ExplFrameConfig::small_demo(seed)
            .with_template_pages(512)
            .with_dram_page_tables(true);
        ExplFrame::new(cfg).run().expect("walk attack completes")
    })];
    let serial = Campaign::new(3, 11).with_threads(1).run(&cells);
    let parallel = Campaign::new(3, 11).with_threads(8).run(&cells);
    assert_eq!(
        serial.cells, parallel.cells,
        "thread count changed a walk-mode report"
    );
}

#[test]
fn walk_mode_templating_writes_off_remapped_pages_as_casualties() {
    // Regression: this seed lands a collateral flip in the leaf table
    // mapping the template buffer itself, silently remapping one template
    // page to a foreign frame. The sweep's read-back then diverges on all
    // 32768 bits of that page, and an unguarded harvest recorded every one
    // as a "weak cell" — 33102 raw templates instead of ~334 — then burned
    // ~50x the hammer budget reproducibility-scoring the phantoms. The
    // remap guard writes the page off as a translation casualty, so the
    // walk run stays within a whisker of its shadow twin.
    let seed = 17_632_468_870_407_644_954;
    let run = |walk: bool| {
        let cfg = ExplFrameConfig::small_demo(seed)
            .with_template_pages(1024)
            .with_dram_page_tables(walk);
        ExplFrame::new(cfg).run().expect("attack completes")
    };
    let shadow = run(false);
    let walk = run(true);
    assert!(shadow.key_correct && walk.key_correct);
    assert_eq!(shadow.templates_found, 336);
    assert_eq!(walk.templates_found, 334, "phantom templates harvested");
    assert_eq!(walk.hammer_pairs_spent, 798_000_000);
    assert!(
        walk.hammer_pairs_spent < 2 * shadow.hammer_pairs_spent,
        "walk sweep burned its budget scoring translation artifacts"
    );
}
