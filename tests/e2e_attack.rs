//! End-to-end attack integration tests: every victim shape, full pipeline.

use explframe::attack::{AttackOutcome, ExplFrame, ExplFrameConfig, VictimCipherKind};

#[test]
fn aes_sbox_key_recovery_end_to_end() {
    let cfg = ExplFrameConfig::small_demo(1).with_template_pages(2048);
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::KeyRecovered);
    assert!(report.key_correct, "recovered key must match the victim's");
    assert!(report.steering_successes >= 1, "steering must have worked");
    assert!(report.recovered_aes_key.is_some());
    // The PFA regime: full key in the low thousands of ciphertexts.
    assert!(
        (500..10_000).contains(&report.ciphertexts_collected),
        "ciphertexts: {}",
        report.ciphertexts_collected
    );
}

#[test]
fn aes_ttable_key_recovery_needs_multiple_faults() {
    let cfg = ExplFrameConfig::small_demo(7)
        .with_template_pages(2048)
        .with_victim(VictimCipherKind::AesTtable);
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::KeyRecovered);
    assert!(report.key_correct);
    // One S-lane fault yields 4 key bytes; full recovery needs ≥ 4 rounds.
    assert!(report.fault_rounds >= 4, "rounds: {}", report.fault_rounds);
}

#[test]
fn present_key_recovery_end_to_end() {
    let cfg = ExplFrameConfig::small_demo(9)
        .with_template_pages(16_384)
        .with_victim(VictimCipherKind::Present);
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::KeyRecovered);
    assert!(report.key_correct);
    assert!(report.recovered_present_key.is_some());
    // PRESENT nibble statistics converge far faster than AES byte ones.
    assert!(report.ciphertexts_collected < 1_000);
}

#[test]
fn attack_is_deterministic_per_seed() {
    let run = |seed| {
        let cfg = ExplFrameConfig::small_demo(seed).with_template_pages(1024);
        ExplFrame::new(cfg).run().expect("run")
    };
    let (a, b) = (run(3), run(3));
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.templates_found, b.templates_found);
    assert_eq!(a.ciphertexts_collected, b.ciphertexts_collected);
    assert_eq!(a.recovered_aes_key, b.recovered_aes_key);
    assert_eq!(a.elapsed, b.elapsed);
}

#[test]
fn cross_cpu_victim_defeats_the_attack() {
    use explframe::memsim::CpuId;
    // Victim pinned to a different CPU: the released frame sits in cpu0's
    // cache, the victim allocates from cpu1's — steering count stays zero.
    let cfg = ExplFrameConfig::small_demo(1)
        .with_template_pages(1024)
        .with_victim_cpu(CpuId(1));
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.steering_successes, 0, "cross-CPU steering must fail");
    assert_ne!(report.outcome, AttackOutcome::KeyRecovered);
}

#[test]
fn hardened_module_yields_no_templates() {
    use explframe::dram::WeakCellParams;
    let mut cfg = ExplFrameConfig::small_demo(4).with_template_pages(512);
    cfg.machine.dram = cfg.machine.dram.with_cells(WeakCellParams::rare());
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::NoUsableTemplates);
    assert!(!report.succeeded());
}

#[test]
fn accelerated_refresh_mitigates() {
    // The classical Rowhammer mitigation: refresh more often. At 64x the
    // refresh rate the per-row window is ~1 ms, fitting ~10.9k aggressor
    // pairs (~21.7k activation-equivalents double-sided) — below the 25k
    // floor of every cell threshold, so no flip can ever occur.
    let mut cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    cfg.machine.dram.timing = cfg.machine.dram.timing.with_refresh_scale(1.0 / 64.0);
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(
        report.outcome,
        AttackOutcome::NoUsableTemplates,
        "64x refresh should suppress templating (found {})",
        report.templates_found
    );
    assert_eq!(report.templates_found, 0);
}

#[test]
fn xor_bank_scrambling_degrades_naive_templating() {
    // The attacker's aggressor arithmetic assumes the linear mapping; with
    // DRAMA-style XOR bank scrambling, the same offsets frequently land in
    // different banks and the hammer primitive rejects them. Templating
    // yield collapses relative to the linear-mapping machine — the
    // defense-in-depth value of address scrambling (and why real attackers
    // must reverse-engineer the mapping first).
    use explframe::dram::MappingKind;
    let linear = {
        let cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
        ExplFrame::new(cfg).run().expect("run").templates_found
    };
    let scrambled = {
        let mut cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
        cfg.machine.dram = cfg.machine.dram.with_mapping(MappingKind::Xor);
        ExplFrame::new(cfg).run().expect("run").templates_found
    };
    assert!(
        scrambled < linear / 2,
        "XOR scrambling should at least halve naive templating yield \
         (linear {linear}, scrambled {scrambled})"
    );
}

#[test]
fn empty_template_scan_reports_no_usable_templates() {
    // An 8-page buffer is below the minimum sweep geometry: the scan is
    // empty and the pipeline must stop cleanly after phase 1.
    let cfg = ExplFrameConfig::small_demo(3).with_template_pages(8);
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::NoUsableTemplates);
    assert_eq!(report.templates_found, 0);
    assert_eq!(report.usable_templates, 0);
    assert_eq!(report.fault_rounds, 0, "no fault round without a template");
    assert_eq!(report.ciphertexts_collected, 0);
    assert!(!report.succeeded());
}

#[test]
fn steering_miss_on_wrong_cpu_runs_out_of_templates() {
    use explframe::memsim::CpuId;
    // Victim on another CPU: every released frame sits in cpu0's page frame
    // cache while the victim allocates from cpu1's, so no round can fault
    // the victim's table and the driver must exhaust its budget.
    let cfg = ExplFrameConfig::small_demo(1)
        .with_template_pages(1024)
        .with_victim_cpu(CpuId(1));
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::OutOfTemplates);
    assert_eq!(report.steering_successes, 0);
    assert!(report.fault_rounds > 0, "rounds were attempted");
    assert!(report.recovered_aes_key.is_none());
    assert!(!report.succeeded());
}

#[test]
fn hammer_without_flip_runs_out_of_templates() {
    // Steering works, but 1k re-hammer pairs are far below every weak
    // cell's threshold: no flip lands, collection proves the table is
    // clean (NoFault) each round, and the driver runs out of templates.
    let cfg = ExplFrameConfig::small_demo(1)
        .with_template_pages(1024)
        .with_rehammer_pairs(1_000);
    let report = ExplFrame::new(cfg).run().expect("machine-level success");
    assert_eq!(report.outcome, AttackOutcome::OutOfTemplates);
    assert!(report.steering_successes > 0, "steering itself still works");
    assert!(
        report.ciphertexts_collected > 0,
        "collection ran before proving no fault landed"
    );
    assert!(report.recovered_aes_key.is_none());
    assert!(!report.succeeded());
}

#[test]
fn template_once_steer_many_recovers_keys_across_restarts() {
    use explframe::attack::Pipeline;
    use explframe::machine::SimMachine;
    // The composition the monolithic driver could not express: one
    // templating sweep, one release, two victim restarts — both keys out.
    let cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    let kind = cfg.victim;
    let mut machine = SimMachine::new(cfg.machine.clone());
    let mut pipe = Pipeline::new(&mut machine, cfg);
    let pool = pipe.template().expect("template");
    let mut remaining = pipe.select(&pool, kind);
    let template = pipe
        .next_template(&mut remaining, kind)
        .expect("usable template");
    let released = pipe.release(&pool, template).expect("release");
    let mut keys = 0;
    for _ in 0..2 {
        let steered = pipe.steer(&released).expect("steer");
        assert!(steered.steered, "re-steering onto the same frame works");
        let victim = steered.victim;
        if pipe.hammer(&pool, &steered).expect("hammer") {
            let faulted = pipe.collect(steered).expect("collect");
            if let Some(key) = pipe.analyze(faulted).expect("analyze") {
                keys += u32::from(pipe.verify_key(kind, &key));
            }
        }
        pipe.stop_victim(victim).expect("stop");
        pipe.settle();
    }
    assert_eq!(keys, 2, "both victim restarts must yield the key");
    let report = pipe.finish(AttackOutcome::KeyRecovered);
    assert_eq!(report.fault_rounds, 2);
    assert_eq!(report.steering_successes, 2);
}

#[test]
fn report_metrics_are_internally_consistent() {
    let cfg = ExplFrameConfig::small_demo(5).with_template_pages(1024);
    let report = ExplFrame::new(cfg).run().expect("run");
    assert!(report.usable_templates <= report.templates_found);
    assert!(report.steering_successes <= report.fault_rounds);
    assert!(report.elapsed > 0);
    assert!(report.hammer_pairs_spent > 0);
    if report.outcome == AttackOutcome::KeyRecovered {
        assert!(report.ciphertexts_collected > 0);
        assert!(report.recovered_aes_key.is_some());
    }
}
