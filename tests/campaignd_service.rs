//! Service-level warm-pool integration: cache hits are invisible in
//! results, boots are shared across jobs, and the daemon's file queue
//! round-trips jobs end to end.
//!
//! The boots-once guarantee is the regression fix for the PR-5 warm pool:
//! `warm_scenario` used to give every campaign a private `OnceLock`-style
//! slot, so two campaigns (or two service jobs) over identical machine
//! configs booted twice. The shared fingerprint-keyed [`WarmCache`] hoists
//! that state: one boot per distinct `(config, warm-up)` key per process,
//! observable through cache statistics and asserted here at both layers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use explframe::attack::{ExplFrame, ExplFrameConfig};
use explframe::campaign::{fnv1a, trial_seed, warm_scenario_in, Campaign, Json, WarmCache};
use explframe::campaignd::{
    fn_job, CampaignServer, JobSpec, ProbeJob, SchedulerKind, ServerConfig, Spool, WarmSpec,
};
use explframe::machine::{warm_boot, MachineConfig, MachineSnapshot};
use explframe::memsim::CpuId;

fn server(
    cache_capacity: usize,
) -> (
    CampaignServer,
    std::sync::mpsc::Receiver<explframe::campaignd::JobResult>,
) {
    CampaignServer::start(ServerConfig {
        workers: 2,
        cache_capacity,
        scheduler: SchedulerKind::WorkStealing,
        ..ServerConfig::default()
    })
}

#[test]
fn a_cache_hit_attack_report_equals_a_cold_boot_one() {
    let make_attack = || {
        Arc::new(
            fn_job("attack", &["aes"], 1, 77, |snap, _cell, seed| {
                let mut cfg = ExplFrameConfig::small_demo(3).with_template_pages(256);
                cfg.seed = seed;
                let report = ExplFrame::new(cfg)
                    .run_snapshot(snap.expect("warm"))
                    .expect("attack runs");
                Json::UInt(fnv1a(format!("{report:?}").as_bytes()))
            })
            .with_warm(WarmSpec {
                config: MachineConfig::small(3),
                warm_pages: 64,
            }),
        ) as Arc<dyn JobSpec>
    };
    let (server, rx) = server(4);
    // Two identical jobs: the first boots (miss), the second rides the
    // cached snapshot (hit).
    server.submit(make_attack()).unwrap();
    server.submit(make_attack()).unwrap();
    let mut results: Vec<_> = (0..2).map(|_| rx.recv().unwrap()).collect();
    results.sort_by_key(|r| r.id);
    let stats = server.shutdown();
    assert_eq!(stats.cache.misses, 1, "identical warm specs boot once");
    assert_eq!(stats.cache.hits, 1);
    // Hit and miss produced byte-identical artifacts...
    assert_eq!(results[0].summary_bytes(), results[1].summary_bytes());
    // ...and both equal an in-process cold boot of the same spec.
    let snap = warm_boot(MachineConfig::small(3), CpuId(0), 64).snapshot();
    let mut cfg = ExplFrameConfig::small_demo(3).with_template_pages(256);
    cfg.seed = trial_seed(77, 0);
    let report = ExplFrame::new(cfg)
        .run_snapshot(&snap)
        .expect("attack runs");
    let expected = fnv1a(format!("{report:?}").as_bytes());
    let summary = Json::parse(&results[0].summary_bytes().unwrap()).unwrap();
    let trial = summary
        .get("cells")
        .and_then(|c| match c {
            Json::Arr(cells) => cells.first(),
            _ => None,
        })
        .and_then(|cell| cell.get("trials"))
        .and_then(|t| match t {
            Json::Arr(trials) => trials.first(),
            _ => None,
        })
        .and_then(Json::as_u64);
    assert_eq!(
        trial,
        Some(expected),
        "cache hit must not change the report"
    );
}

#[test]
fn two_service_jobs_with_identical_configs_boot_exactly_once() {
    let (server, rx) = server(4);
    for (name, seed) in [("probe-a", 1u64), ("probe-b", 2)] {
        // Different job names and campaign seeds — but the same machine
        // config and warm-up, hence one shared boot.
        server
            .submit(Arc::new(ProbeJob::new(
                name,
                MachineConfig::small(9),
                64,
                4,
                seed,
            )))
            .unwrap();
    }
    let results: Vec<_> = (0..2).map(|_| rx.recv().unwrap()).collect();
    assert!(results.iter().all(|r| r.is_completed()));
    let stats = server.shutdown();
    assert_eq!(stats.cache.misses, 1, "one boot for two jobs");
    assert_eq!(stats.cache.hits, 1);
}

#[test]
fn exp_binaries_share_boots_across_campaigns_through_one_cache() {
    // The exp-binary pattern after the hoist: a process-wide cache passed
    // to `warm_scenario_in`, so *separate campaign runs* with identical
    // machine configs reuse one boot. The counter is the regression probe:
    // it counts actual boots, independent of cache bookkeeping.
    let cache: Arc<WarmCache<MachineSnapshot>> = Arc::new(WarmCache::new(2));
    let boots = Arc::new(AtomicU64::new(0));
    let spec = WarmSpec {
        config: MachineConfig::small(9),
        warm_pages: 64,
    };
    let run_one_campaign = |name: &str, campaign_seed: u64| {
        let boots = Arc::clone(&boots);
        let spec = spec.clone();
        let key = spec.key();
        let cells = vec![warm_scenario_in(
            name,
            &cache,
            key,
            move || {
                boots.fetch_add(1, Ordering::SeqCst);
                spec.boot()
            },
            |snap: &MachineSnapshot, seed| {
                let mut machine = snap.fork();
                ProbeJob::probe(&mut machine, seed)
            },
        )];
        Campaign::new(4, campaign_seed).with_threads(2).run(&cells)
    };
    let first = run_one_campaign("campaign-one", 10);
    let second = run_one_campaign("campaign-two", 10);
    assert_eq!(
        boots.load(Ordering::SeqCst),
        1,
        "second campaign must not re-boot"
    );
    // Same campaign seed ⇒ same derived trial seeds ⇒ identical trials,
    // whether served cold or from the cache.
    assert_eq!(first.cells[0].trials, second.cells[0].trials);
}

#[test]
fn mixed_config_jobs_stream_results_matching_cold_references() {
    let (server, rx) = server(4);
    let trials = 3u32;
    for cfg_seed in [1u64, 2] {
        server
            .submit(Arc::new(ProbeJob::new(
                format!("probe-{cfg_seed}"),
                MachineConfig::small(cfg_seed),
                64,
                trials,
                100 + cfg_seed,
            )))
            .unwrap();
    }
    let mut results: Vec<_> = (0..2).map(|_| rx.recv().unwrap()).collect();
    results.sort_by_key(|r| r.id);
    let stats = server.shutdown();
    assert_eq!(stats.cache.misses, 2, "two distinct configs, two boots");
    for (result, cfg_seed) in results.iter().zip([1u64, 2]) {
        // Cold reference: fork a fresh warm boot per trial, same seeding
        // rule as the server's.
        let snap = warm_boot(MachineConfig::small(cfg_seed), CpuId(0), 64).snapshot();
        let expected: Vec<Json> = (0..u64::from(trials))
            .map(|t| {
                let mut machine = snap.fork();
                Json::UInt(ProbeJob::probe(&mut machine, trial_seed(100 + cfg_seed, t)))
            })
            .collect();
        let summary = Json::parse(&result.summary_bytes().unwrap()).unwrap();
        let got = summary
            .get("cells")
            .and_then(|c| match c {
                Json::Arr(cells) => cells.first(),
                _ => None,
            })
            .and_then(|cell| cell.get("trials"))
            .cloned();
        assert_eq!(got, Some(Json::Arr(expected)), "job probe-{cfg_seed}");
    }
}

#[test]
fn spool_round_trips_job_files_into_result_files() {
    let dir = std::env::temp_dir().join(format!("campaignd-spool-{}", std::process::id()));
    let _cleanup = scopeguard_rmdir(&dir);
    let mut spool = Spool::open(
        &dir,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Two well-formed jobs sharing a config (one boot) and one malformed
    // file that must be rejected without derailing the rest.
    std::fs::write(
        dir.join("alpha.job.json"),
        r#"{"name":"alpha","preset":"small","config_seed":4,"trials":3,"seed":21,"warm_pages":64}"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("beta.job.json"),
        r#"{"name":"beta","preset":"small","config_seed":4,"trials":3,"seed":22,"warm_pages":64}"#,
    )
    .unwrap();
    std::fs::write(dir.join("broken.job.json"), "{not json").unwrap();
    let (submitted, _) = spool.poll().unwrap();
    assert_eq!(submitted, 2, "well-formed jobs submitted");
    spool.drain().unwrap();
    let stats = spool.shutdown();
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.cache.misses, 1, "alpha and beta share one boot");
    for stem in ["alpha", "beta"] {
        let text = std::fs::read_to_string(dir.join(format!("{stem}.result.json"))).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("completed"));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some(stem));
        assert!(doc.get("summary").is_some());
    }
    let rejected = std::fs::read_to_string(dir.join("broken.result.json")).unwrap();
    let doc = Json::parse(&rejected).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("rejected"));
    // Every job reached its final result, so no claim markers linger.
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".job.claimed"))
        .collect();
    assert_eq!(leftovers, Vec::<String>::new());
}

/// Minimal drop-guard so the spool temp dir is removed even on panic.
fn scopeguard_rmdir(dir: &std::path::Path) -> impl Drop {
    struct Cleanup(std::path::PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    Cleanup(dir.to_path_buf())
}
