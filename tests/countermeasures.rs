//! Countermeasure determinism: a TRR-protected module suppresses the
//! naive attack completely, the adaptive driver bypasses it many-sided at
//! a recorded extra hammer cost, and SECDED ECC hides single-bit faults
//! from the victim's reads.

use explframe::attack::{
    AttackOutcome, ExplFrame, ExplFrameConfig, VictimCipherKind, VictimCipherService, VictimKeys,
};
use explframe::ciphers::{BlockCipher, ReferenceAes};
use explframe::dram::{EccMode, TrrParams};
use explframe::machine::SimMachine;
use explframe::memsim::CpuId;

/// Hammer pairs the unmitigated seed-1 run spends (pinned in
/// `tests/determinism.rs`).
const UNMITIGATED_SEED1_PAIRS: u64 = 753_600_000;

fn trr_config(seed: u64) -> ExplFrameConfig {
    let mut cfg = ExplFrameConfig::small_demo(seed).with_template_pages(1024);
    cfg.machine.dram = cfg.machine.dram.with_trr(Some(TrrParams::ddr4_like()));
    cfg
}

#[test]
fn trr_suppresses_the_naive_attack() {
    let report = ExplFrame::new(trr_config(1)).run().expect("attack run");
    assert_eq!(report.outcome, AttackOutcome::NoUsableTemplates);
    assert_eq!(
        report.templates_found, 0,
        "a fitting sampler must refresh every sandwiched victim in time"
    );
    assert_eq!(report.strategy_escalations, 0);
    assert!(!report.key_correct);
}

#[test]
fn adaptive_attack_bypasses_trr_and_recovers_the_key() {
    let report = ExplFrame::new(trr_config(1))
        .run_adaptive()
        .expect("adaptive run");
    assert_eq!(report.outcome, AttackOutcome::KeyRecovered);
    assert!(report.key_correct);
    assert_eq!(
        report.strategy_escalations, 1,
        "exactly one escalation: double-sided -> many-sided"
    );
    // The bypass is not free: the wasted double-sided sweep plus the
    // many-sided activation overhead (8 rows per round instead of 2) cost
    // pair-equivalents well beyond the unmitigated attack's budget.
    // Pinned from the first recording of this composition (seed 1,
    // 1024 template pages, ddr4-like TRR): ~4.7x the unmitigated run.
    assert!(
        report.hammer_pairs_spent > UNMITIGATED_SEED1_PAIRS,
        "expected extra hammer cost, got {} pairs",
        report.hammer_pairs_spent
    );
    assert_eq!(report.hammer_pairs_spent, 3_512_000_000);
    assert_eq!(report.templates_found, 318);
    assert_eq!(report.usable_templates, 12);
    assert_eq!(report.fault_rounds, 1);
    assert_eq!(report.ciphertexts_collected, 2240);
    assert_eq!(report.elapsed, 384_159_498_249);
    // Determinism: the adaptive composition is a pure function of the
    // seed, byte for byte.
    let again = ExplFrame::new(trr_config(1))
        .run_adaptive()
        .expect("second adaptive run");
    assert_eq!(report, again, "adaptive runs with one seed diverged");
}

#[test]
fn adaptive_driver_matches_classic_run_without_countermeasures() {
    // On an unmitigated module the first sweep finds templates, nothing
    // escalates, and the adaptive driver is byte-identical to run().
    let cfg = ExplFrameConfig::small_demo(1).with_template_pages(512);
    let classic = ExplFrame::new(cfg.clone()).run().expect("classic");
    let adaptive = ExplFrame::new(cfg).run_adaptive().expect("adaptive");
    assert_eq!(classic, adaptive);
    assert_eq!(adaptive.strategy_escalations, 0);
}

#[test]
fn secded_hides_single_bit_table_faults_from_the_victim() {
    // Find a machine seed whose victim table page holds a weak cell whose
    // charged value matches the installed S-box image, hammer it, and
    // confirm the victim's encryptions stay byte-correct (the fault is
    // corrected on every read) while the corrected-error telemetry — the
    // channel the ECC-aware collector watches — ticks up.
    for seed in 0..400u64 {
        let mut machine_cfg = explframe::machine::MachineConfig::small(seed);
        machine_cfg.dram = machine_cfg.dram.with_ecc(EccMode::Secded);
        let mut m = SimMachine::new(machine_cfg);
        let keys = VictimKeys::from_seed(seed);
        let svc = VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesSbox, keys)
            .expect("victim start");
        let table = m.translate(svc.pid(), svc.table_base()).expect("resident");
        let image_len = VictimCipherKind::AesSbox.image_len() as u32;

        // A weak cell inside the S-box image whose charged value the image
        // currently stores (so hammering will flip it).
        let coord = m.dram().mapping().phys_to_coord(table);
        let cells = m.dram_mut().weak_cells_at(table);
        let candidate = cells.iter().copied().find(|c| {
            let byte_in_row = c.bit_in_row / 8;
            if byte_in_row < coord.col || byte_in_row >= coord.col + image_len {
                return false;
            }
            let offset = byte_in_row - coord.col;
            let image_bit =
                explframe::ciphers::TableImage::sbox()[offset as usize] & (1 << (c.bit_in_row % 8));
            (image_bit != 0) == c.polarity.charged_value()
        });
        let Some(cell) = candidate else { continue };
        if coord.row < 1 || coord.row + 1 >= m.config().dram.geometry.rows {
            continue;
        }

        let above = m
            .dram()
            .mapping()
            .coord_to_phys(explframe::dram::DramCoord {
                row: coord.row - 1,
                col: 0,
                ..coord
            });
        let below = m
            .dram()
            .mapping()
            .coord_to_phys(explframe::dram::DramCoord {
                row: coord.row + 1,
                col: 0,
                ..coord
            });
        let flips = m
            .dram_mut()
            .hammer_pair(above, below, cell.threshold_acts() + 16)
            .expect("hammer")
            .flips;
        assert!(
            flips.iter().any(|f| f.coord.row == coord.row),
            "known weak cell failed to flip"
        );

        // The physical fault is in the stored S-box, but every encryption
        // still matches the reference cipher: ECC corrects the word on
        // each read, and the corrected counter (EDAC telemetry) rises.
        let corrected_before = m.dram().ecc_stats().corrected;
        for i in 0..8u8 {
            let mut block = [i; 16];
            let mut expect = block;
            svc.encrypt(&mut m, &mut block).expect("encrypt");
            ReferenceAes::new_128(&keys.aes).encrypt_block(&mut expect);
            assert_eq!(block, expect, "ECC failed to hide the fault");
        }
        assert!(
            m.dram().ecc_stats().corrected > corrected_before,
            "victim reads never exercised the correction path"
        );
        return;
    }
    panic!("no seed in 0..400 put a matching weak cell inside the victim's S-box image");
}
