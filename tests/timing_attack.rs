//! Integration tests for the DRAM timing engine as seen from the attack:
//! the zero-stall invariant (timing on changes no reported number except
//! the headroom metric), determinism of the time-domain countermeasures
//! under campaign parallelism, and the latency-based mapping probe
//! cross-checked against the configured oracle mapping on every shipped
//! geometry.

use explframe::attack::{
    AttackOutcome, AttackReport, ExplFrame, ExplFrameConfig, Pipeline, RecoveredMapping,
};
use explframe::dram::{MappingKind, ParaParams, RfmParams};
use explframe::machine::{MachineConfig, SimMachine};

/// Runs the mapping probe on a fresh machine built from `preset` with the
/// oracle mapping forced to `mapping`.
fn probe(preset: fn(u64) -> MachineConfig, seed: u64, mapping: MappingKind) -> RecoveredMapping {
    let mut machine_cfg = preset(seed);
    machine_cfg.dram = machine_cfg
        .dram
        .with_mapping(mapping)
        .with_timing_engine(true);
    let cfg = ExplFrameConfig::small_demo(seed).with_machine(machine_cfg);
    let mut machine = SimMachine::new(cfg.machine.clone());
    let mut pipe = Pipeline::new(&mut machine, cfg);
    pipe.probe_mapping().expect("mapping probe runs")
}

#[test]
fn mapping_probe_recovers_the_oracle_mapping_on_every_geometry() {
    // DRAMA-style recovery must identify the exact configured mapping —
    // and the same-bank row stride the templating phase depends on — for
    // both mapping functions on all three shipped geometries.
    for preset in [
        MachineConfig::small as fn(u64) -> MachineConfig,
        MachineConfig::medium,
        MachineConfig::desktop,
    ] {
        for mapping in [MappingKind::Linear, MappingKind::Xor] {
            let g = preset(1).dram.geometry;
            let row_pages = u64::from(g.row_bytes) / 4096;
            let expected_stride = match mapping {
                MappingKind::Linear => row_pages * g.total_banks(),
                MappingKind::Xor => row_pages * g.total_banks() * u64::from(g.banks),
            };
            let recovered = probe(preset, 1, mapping);
            assert_eq!(
                recovered.kind,
                Some(mapping),
                "probe misidentified {mapping:?} on {g:?}"
            );
            assert_eq!(recovered.stride_pages, expected_stride, "wrong stride");
            assert!(recovered.probes > 0);
            assert!(recovered.elapsed > 0, "probe must consume simulated time");
        }
    }
}

#[test]
fn mapping_probe_is_deterministic() {
    for mapping in [MappingKind::Linear, MappingKind::Xor] {
        let a = probe(MachineConfig::small, 7, mapping);
        let b = probe(MachineConfig::small, 7, mapping);
        assert_eq!(a, b, "probe diverged between identical runs");
    }
}

/// The seed-1 demo run with the timing engine toggled by `timed` and the
/// countermeasures given by `para`/`rfm`.
fn timed_report(timed: bool, para: Option<ParaParams>, rfm: Option<RfmParams>) -> AttackReport {
    let mut cfg = ExplFrameConfig::small_demo(1).with_template_pages(1024);
    cfg.machine.dram = cfg
        .machine
        .dram
        .with_timing_engine(timed)
        .with_para(para)
        .with_rfm(rfm);
    ExplFrame::new(cfg).run().expect("attack run completes")
}

#[test]
fn timing_engine_changes_nothing_but_the_headroom_metric() {
    // Zero-stall model: the command clock observes the access stream, it
    // never stalls it. Turning the engine on must leave every reported
    // number — including simulated elapsed time — byte-identical, and only
    // add the activation-budget headroom metric.
    let untimed = timed_report(false, None, None);
    let mut timed = timed_report(true, None, None);
    assert!(untimed.hammer_rate_headroom.is_none());
    let headroom = timed
        .hammer_rate_headroom
        .take()
        .expect("timed run reports hammer-rate headroom");
    assert!(
        headroom.is_finite() && headroom > 0.0,
        "headroom must be a positive ratio, got {headroom}"
    );
    assert_eq!(untimed, timed, "timing engine perturbed the attack");
}

#[test]
fn countermeasure_runs_are_deterministic_per_seed() {
    let a = timed_report(true, Some(ParaParams::default()), None);
    let b = timed_report(true, Some(ParaParams::default()), None);
    assert_eq!(a, b, "PARA run diverged between identical seeds");
    let c = timed_report(true, None, Some(RfmParams::default()));
    let d = timed_report(true, None, Some(RfmParams::default()));
    assert_eq!(c, d, "RFM run diverged between identical seeds");
}

#[test]
fn probe_enabled_run_is_deterministic_and_still_recovers_the_key() {
    // The probe perturbs allocator state before templating (its transient
    // prober process maps and frees pages), so the run need not match the
    // probe-less golden — but it must stay deterministic and end-to-end
    // successful, including through the memoized campaign path.
    let run = || {
        let mut cfg = ExplFrameConfig::small_demo(1)
            .with_template_pages(1024)
            .with_probe_mapping(true);
        cfg.machine.dram = cfg.machine.dram.with_timing_engine(true);
        ExplFrame::new(cfg).run().expect("attack run completes")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "probe-enabled run diverged between identical seeds");
    assert_eq!(a.outcome, AttackOutcome::KeyRecovered);
}

#[test]
fn timed_para_campaign_is_thread_count_invariant() {
    use explframe::campaign::{scenario, Campaign};
    // Per-seed countermeasure state lives in the device, keyed on the trial
    // seed — reducing on 1 worker and on 8 must agree byte-for-byte.
    let cells = vec![scenario("explframe-timed-para", |seed| {
        let mut cfg = ExplFrameConfig::small_demo(seed).with_template_pages(512);
        cfg.machine.dram = cfg
            .machine
            .dram
            .with_timing_engine(true)
            .with_para(Some(ParaParams::default()));
        ExplFrame::new(cfg).run().expect("attack run completes")
    })];
    let serial = Campaign::new(3, 11).with_threads(1).run(&cells);
    let parallel = Campaign::new(3, 11).with_threads(8).run(&cells);
    assert_eq!(
        serial.cells, parallel.cells,
        "thread count changed a timed pipeline report"
    );
}
