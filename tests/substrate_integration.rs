//! Cross-crate substrate tests: DRAM ↔ allocator ↔ machine ↔ ciphers.

use explframe::attack::{MachineTableSource, VictimCipherKind, VictimCipherService, VictimKeys};
use explframe::ciphers::{BlockCipher, RamTableSource, SboxAes, TableImage, TableSource};
use explframe::fault::PfaCollector;
use explframe::machine::{MachineConfig, SimMachine};
use explframe::memsim::{CpuId, EventKind, Order, ServedFrom, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn steered_frame_carries_cipher_tables_and_faults_propagate() {
    // Attacker releases a frame; victim's table lands on it; a DRAM-level
    // bit flip in that frame changes the ciphertexts the victim produces.
    let mut m = SimMachine::new(MachineConfig::small(21));
    let attacker = m.spawn(CpuId(0));
    let buf = m.mmap(attacker, 2).unwrap();
    m.fill(attacker, buf, 2 * PAGE_SIZE, 0x55).unwrap();
    let released = m.translate(attacker, buf).unwrap();
    m.munmap(attacker, buf, 1).unwrap();

    let keys = VictimKeys::from_seed(77);
    let victim =
        VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesSbox, keys).unwrap();
    let frame = victim.table_pfn(&m).unwrap();
    assert_eq!(frame.phys_addr(), released.align_down(PAGE_SIZE).as_u64());

    // Pre-fault ciphertext.
    let mut before = *b"0123456789abcdef";
    victim.encrypt(&mut m, &mut before).unwrap();

    // Flip a bit of S-box entry 0 (0x63: bit 0 set) directly in DRAM.
    let pa = released.align_down(PAGE_SIZE);
    let b = m.dram_mut().read_byte(pa);
    m.dram_mut().write_byte(pa, b ^ 0x01);

    // Post-fault ciphertexts differ for some inputs and the PFA missing
    // value property holds.
    let mut collector = PfaCollector::new();
    let mut rng = StdRng::seed_from_u64(1);
    while !collector.all_positions_determined() {
        let mut block: [u8; 16] = rng.gen();
        victim.encrypt(&mut m, &mut block).unwrap();
        collector.observe(&block);
        assert!(collector.total() < 50_000, "PFA failed to converge");
    }
    let analysis = collector.analyze_known_fault(TableImage::sbox()[0]);
    assert_eq!(analysis.master_key(), Some(keys.aes));
}

#[test]
fn machine_table_source_equals_ram_table_source() {
    // An encryption through simulated memory must equal one through a plain
    // buffer holding the same image.
    let mut m = SimMachine::new(MachineConfig::small(5));
    let pid = m.spawn(CpuId(2));
    let va = m.mmap(pid, 1).unwrap();
    let image = TableImage::sbox().to_vec();
    m.write(pid, va, &image).unwrap();

    let key = [0x42u8; 16];
    let mut via_ram = SboxAes::new_128(&key, RamTableSource::new(image));
    let src = MachineTableSource::new(&mut m, pid, va, 256);
    let mut via_machine = SboxAes::new_128(&key, src);

    let mut a = *b"integration test";
    let mut b = a;
    via_ram.encrypt_block(&mut a);
    via_machine.encrypt_block(&mut b);
    assert_eq!(a, b);
}

#[test]
fn table_reads_generate_dram_traffic() {
    let mut m = SimMachine::new(MachineConfig::small(5));
    let pid = m.spawn(CpuId(0));
    let va = m.mmap(pid, 1).unwrap();
    m.write(pid, va, &TableImage::sbox()).unwrap();
    let reads_before = m.dram().stats().reads;
    let mut src = MachineTableSource::new(&mut m, pid, va, 256);
    for i in 0..64 {
        src.read_u8(i);
    }
    assert!(m.dram().stats().reads >= reads_before + 64);
}

#[test]
fn allocator_trace_captures_attack_steering() {
    // The steering moment is visible in the allocator trace: a free to the
    // pcp head followed by an alloc served from the pcp with the same pfn.
    let mut m = SimMachine::new(MachineConfig::small(13));
    m.allocator_mut().trace_mut().set_enabled(true);
    let attacker = m.spawn(CpuId(0));
    let buf = m.mmap(attacker, 1).unwrap();
    m.write(attacker, buf, b"payload").unwrap();
    let pfn = explframe::memsim::Pfn(m.translate(attacker, buf).unwrap().as_u64() / PAGE_SIZE);
    m.munmap(attacker, buf, 1).unwrap();

    let victim = m.spawn(CpuId(0));
    let vb = m.mmap(victim, 1).unwrap();
    m.write(victim, vb, b"tables").unwrap();

    let events: Vec<_> = m.allocator().trace().iter().copied().collect();
    let free_idx = events
        .iter()
        .position(
            |e| matches!(e.kind, EventKind::Free { pfn: p, to: ServedFrom::PcpCache, .. } if p == pfn),
        )
        .expect("free into pcp recorded");
    let alloc_idx = events
        .iter()
        .position(
            |e| matches!(e.kind, EventKind::Alloc { pfn: p, served: ServedFrom::PcpCache, .. } if p == pfn),
        )
        .expect("pcp-served alloc recorded");
    assert!(free_idx < alloc_idx);
}

#[test]
fn hammered_flip_is_durable_across_allocation_lifecycle() {
    // A flip in a frame persists when the frame is freed and reallocated —
    // DRAM data does not reset on allocator transitions (no page zeroing
    // happens until the next first-touch fault).
    let mut m = SimMachine::new(MachineConfig::small(21));
    let p1 = m.spawn(CpuId(1));
    let va = m.mmap(p1, 1).unwrap();
    m.fill(p1, va, PAGE_SIZE, 0xEE).unwrap();
    let pa = m.translate(p1, va).unwrap();
    m.dram_mut().write_byte(pa, 0x00); // simulate a flip-corrupted byte
    m.munmap(p1, va, 1).unwrap();

    // Same CPU reallocates the frame; the *kernel* zeroes it on fault, so
    // the corruption is gone for the next owner — but the DRAM cells were
    // genuinely written in between (check via the dram plane).
    let p2 = m.spawn(CpuId(1));
    let va2 = m.mmap(p2, 1).unwrap();
    let pa2 = m.touch(p2, va2).unwrap();
    assert_eq!(pa2.align_down(PAGE_SIZE), pa.align_down(PAGE_SIZE));
    let mut buf = [0xFFu8; 1];
    m.read(p2, va2, &mut buf).unwrap();
    assert_eq!(buf[0], 0, "anonymous pages are zero-filled on first touch");
}

#[test]
fn zone_fallback_served_small_machine_from_dma32() {
    let mut m = SimMachine::new(MachineConfig::small(2));
    let pid = m.spawn(CpuId(0));
    let va = m.mmap(pid, 4).unwrap();
    m.fill(pid, va, 4 * PAGE_SIZE, 1).unwrap();
    for i in 0..4 {
        let pa = m.translate(pid, va + i * PAGE_SIZE).unwrap();
        let pfn = explframe::memsim::Pfn(pa.as_u64() / PAGE_SIZE);
        assert_eq!(
            m.allocator().zone_of(pfn),
            Some(explframe::memsim::ZoneKind::Dma32),
            "normal allocations on a 256 MiB machine come from ZONE_DMA32"
        );
    }
}

#[test]
fn high_order_allocations_bypass_the_page_frame_cache() {
    let mut m = SimMachine::new(MachineConfig::small(2));
    let pfn = m.allocator_mut().alloc_pages(CpuId(0), Order(4)).unwrap();
    assert!(pfn.is_aligned(Order(4)));
    let zone = m.allocator().zone_of(pfn).unwrap();
    assert_eq!(m.allocator().zone(zone).unwrap().stats().pcp_hits, 0);
    m.allocator_mut().free_pages(CpuId(0), pfn).unwrap();
}
