//! Integration of the fault chain across the machine: victim services of
//! every cipher shape, faults planted through simulated DRAM, analyses run
//! from machine-observed ciphertexts only.

use explframe::attack::{VictimCipherKind, VictimCipherService, VictimKeys};
use explframe::ciphers::{
    present80_round_keys, present_sbox_image, BlockCipher, Present80, RamTableSource, TableImage,
    PRESENT_SBOX,
};
use explframe::fault::{PfaCollector, PresentPfa, TTablePfa, TableFault, TeFaultClass};
use explframe::machine::{MachineConfig, SimMachine};
use explframe::memsim::{CpuId, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flip one bit of the victim's table page directly in DRAM (the hammer's
/// net effect) and return the fault descriptor.
fn plant_fault(
    m: &mut SimMachine,
    victim: &VictimCipherService,
    offset: usize,
    bit: u8,
) -> TableFault {
    let pa = m
        .translate(victim.pid(), victim.table_base())
        .expect("table mapped")
        .align_down(PAGE_SIZE);
    let byte = m.dram_mut().read_byte(pa + offset as u64);
    m.dram_mut()
        .write_byte(pa + offset as u64, byte ^ (1 << bit));
    TableFault { offset, bit }
}

#[test]
fn ttable_victim_multi_fault_recovery_through_machine() {
    let mut m = SimMachine::new(MachineConfig::small(31));
    let keys = VictimKeys::from_seed(4242);
    let mut rng = StdRng::seed_from_u64(7);
    let mut driver = TTablePfa::new();

    for table in 0..4usize {
        // Fresh victim per fault round, same key (service restart).
        let victim =
            VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesTtable, keys)
                .unwrap();
        let entry = 0x40 + table * 3;
        let offset = TableImage::te_entry_offset(table, entry)
            + explframe::ciphers::FINAL_ROUND_S_LANE[table];
        let fault = plant_fault(&mut m, &victim, offset, 5);
        let TeFaultClass::SLane { positions, .. } = fault.classify_te() else {
            panic!("S-lane fault by construction");
        };

        let mut collector = PfaCollector::new();
        loop {
            let mut block = [0u8; 16];
            rng.fill(&mut block[..]);
            victim.encrypt(&mut m, &mut block).unwrap();
            collector.observe(&block);
            if positions.iter().all(|&p| collector.unseen_count(p) == 1) {
                break;
            }
            assert!(collector.total() < 100_000, "convergence failure");
        }
        driver.absorb(fault, &collector).expect("exploitable");
        victim.stop(&mut m).unwrap();
    }
    assert_eq!(driver.master_key(), Some(keys.aes));
}

#[test]
fn present_victim_recovery_through_machine() {
    let mut m = SimMachine::new(MachineConfig::small(32));
    let keys = VictimKeys::from_seed(99);
    let victim =
        VictimCipherService::start(&mut m, CpuId(1), VictimCipherKind::Present, keys).unwrap();

    // Known pre-fault pair.
    let plain = *b"\xAA\xBB\xCC\xDD\x01\x02\x03\x04";
    let mut known = plain;
    victim.encrypt(&mut m, &mut known).unwrap();

    let entry = 0x6;
    plant_fault(&mut m, &victim, entry, 1);

    let mut pfa = PresentPfa::new();
    let mut rng = StdRng::seed_from_u64(3);
    while !pfa.all_positions_determined() {
        let mut block = [0u8; 8];
        rng.fill(&mut block[..]);
        victim.encrypt(&mut m, &mut block).unwrap();
        pfa.observe(&block);
        assert!(pfa.total() < 20_000);
    }
    assert_eq!(
        pfa.recover_round32_key(PRESENT_SBOX[entry]),
        Some(present80_round_keys(&keys.present)[31])
    );
    let recovered = pfa
        .recover_master_key(PRESENT_SBOX[entry], |cand| {
            let mut b = plain;
            Present80::new(cand, RamTableSource::new(present_sbox_image().to_vec()))
                .encrypt_block(&mut b);
            b == known
        })
        .expect("master key");
    assert_eq!(recovered, keys.present);
}

#[test]
fn fault_in_unused_lane_is_not_pfa_exploitable_but_corrupts() {
    // A flip in a 3S/2S lane corrupts middle rounds only: ciphertexts are
    // wrong, but every position eventually sees all 256 values — the
    // attack's statistical no-fault detector fires, which is exactly how
    // the pipeline knows to re-steer.
    let mut m = SimMachine::new(MachineConfig::small(33));
    let keys = VictimKeys::from_seed(5);
    let victim =
        VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesTtable, keys).unwrap();
    let offset = TableImage::te_entry_offset(0, 0x11); // lane 0 of Te0 = 3S
    let fault = plant_fault(&mut m, &victim, offset, 3);
    assert!(!fault.classify_te().is_exploitable());

    let mut collector = PfaCollector::new();
    let mut rng = StdRng::seed_from_u64(11);
    let mut corrupted = false;
    for _ in 0..6000 {
        let mut block: [u8; 16] = rng.gen();
        let reference = {
            let mut b = block;
            explframe::ciphers::ReferenceAes::new_128(&keys.aes).encrypt_block(&mut b);
            b
        };
        victim.encrypt(&mut m, &mut block).unwrap();
        corrupted |= block != reference;
        collector.observe(&block);
    }
    assert!(corrupted, "middle-round fault must corrupt ciphertexts");
    // No-fault signature at the last round: some position saw every value.
    assert!(
        (0..16).any(|p| collector.unseen_count(p) == 0),
        "last round must look unfaulted"
    );
}

#[test]
fn two_simultaneous_faults_break_single_missing_value_statistics() {
    // The reason `select_attack_pages` requires exactly one firing flip per
    // page: two faulted S-box entries leave two missing values per position.
    let mut m = SimMachine::new(MachineConfig::small(34));
    let keys = VictimKeys::from_seed(6);
    let victim =
        VictimCipherService::start(&mut m, CpuId(0), VictimCipherKind::AesSbox, keys).unwrap();
    plant_fault(&mut m, &victim, 0x10, 2);
    plant_fault(&mut m, &victim, 0x80, 6);

    let mut collector = PfaCollector::new();
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..30_000 {
        let mut block: [u8; 16] = rng.gen();
        victim.encrypt(&mut m, &mut block).unwrap();
        collector.observe(&block);
    }
    // Positions stall at two unseen values; single-missing never resolves.
    assert!(!collector.all_positions_determined());
    assert!((0..16).all(|p| collector.unseen_count(p) == 2));
}

#[test]
fn victim_restart_reuses_released_frame_cycle() {
    // Stopping a victim returns its steered frame to the pcp head; the next
    // victim on the same CPU picks it up again — the frame cycles, which is
    // what lets multi-round T-table attacks keep hitting vulnerable memory.
    let mut m = SimMachine::new(MachineConfig::small(35));
    let keys = VictimKeys::from_seed(7);
    let v1 = VictimCipherService::start(&mut m, CpuId(2), VictimCipherKind::AesSbox, keys).unwrap();
    let f1 = v1.table_pfn(&m).unwrap();
    v1.stop(&mut m).unwrap();
    let v2 = VictimCipherService::start(&mut m, CpuId(2), VictimCipherKind::AesSbox, keys).unwrap();
    let f2 = v2.table_pfn(&m).unwrap();
    assert_eq!(
        f1, f2,
        "the released frame cycles back through the pcp head"
    );
}
