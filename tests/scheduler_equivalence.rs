//! The scheduler-equivalence battery: trial scheduling is byte-level
//! unobservable in campaign artifacts.
//!
//! Two layers of the system promise the same contract and both are pinned
//! here against a 1-thread static baseline:
//!
//! * the in-process engine — [`Campaign::run_with`] under every
//!   [`TrialScheduler`] and thread count renders identical
//!   `summary.json`/`trace.json` bytes;
//! * the service — a mixed job matrix (arithmetic, machine probes, a full
//!   ExplFrame attack riding the warm cache) through
//!   [`campaignd::assert_scheduler_equivalence`] across scheduler kinds ×
//!   worker counts.
//!
//! Machine-backed cells share warm snapshots through one [`WarmCache`]
//! across *all* runs of the matrix, so cache cold/warm state is part of
//! what is proven unobservable.

use std::sync::Arc;

use explframe::attack::{ExplFrame, ExplFrameConfig};
use explframe::campaign::{
    fnv1a, warm_scenario_in, AdversarialSteal, Campaign, Json, StaticPartition, Summary, TraceSink,
    TrialScheduler, WarmCache, WorkStealing,
};
use explframe::campaignd::{fn_job, JobSpec, ProbeJob, WarmSpec};
use explframe::machine::{warm_boot, MachineConfig, MachineSnapshot};
use explframe::memsim::CpuId;

const THREAD_GRID: [usize; 3] = [1, 2, 8];

/// Renders the deterministic artifacts (summary bytes, trace bytes) of one
/// campaign run over machine-probe cells.
fn render_campaign(
    campaign: &Campaign,
    scheduler: &dyn TrialScheduler,
    cache: &Arc<WarmCache<MachineSnapshot>>,
) -> (String, String) {
    // Three probe cells over two machine configs and two warm-up depths:
    // cells 0 and 2 share a config but not a depth, so the cache sees
    // multiple keys and (across the grid of runs) both cold and warm paths.
    let cells: Vec<_> = [(1u64, 32u64), (2, 32), (1, 64)]
        .into_iter()
        .map(|(cfg_seed, pages)| {
            let spec = WarmSpec {
                config: MachineConfig::small(cfg_seed),
                warm_pages: pages,
            };
            let key = spec.key();
            warm_scenario_in(
                format!("probe-s{cfg_seed}-p{pages}"),
                cache,
                key,
                move || spec.boot(),
                |snap: &MachineSnapshot, seed| {
                    let mut machine = snap.fork();
                    ProbeJob::probe(&mut machine, seed)
                },
            )
        })
        .collect();
    let result = campaign.run_with(&cells, scheduler);
    let mut summary = Summary::new("sched_equiv", campaign);
    let mut trace = TraceSink::new("sched_equiv");
    for cell in &result.cells {
        let fingerprint = fnv1a(format!("{:?}", cell.trials).as_bytes());
        summary.cell(&cell.name, &[("fingerprint", Json::UInt(fingerprint))]);
        let mut event = Json::obj();
        event.set("event", "cell-reduced");
        event.set("cell", cell.name.as_str());
        event.set("fingerprint", fingerprint);
        trace.push(event);
    }
    (
        summary.deterministic_json().pretty(),
        trace.record().pretty(),
    )
}

#[test]
fn campaign_engine_renders_identical_bytes_under_every_scheduler() {
    let cache = Arc::new(WarmCache::new(4));
    let baseline = render_campaign(
        &Campaign::new(4, 42).with_threads(1),
        &StaticPartition,
        &cache,
    );
    let schedulers: [&dyn TrialScheduler; 4] = [
        &StaticPartition,
        &WorkStealing,
        &AdversarialSteal::new(5),
        &AdversarialSteal::new(0xFEED),
    ];
    for threads in THREAD_GRID {
        for scheduler in schedulers {
            let run = render_campaign(
                &Campaign::new(4, 42).with_threads(threads),
                scheduler,
                &cache,
            );
            assert_eq!(
                run.0,
                baseline.0,
                "summary bytes diverged under {} x {threads} threads",
                scheduler.name()
            );
            assert_eq!(
                run.1,
                baseline.1,
                "trace bytes diverged under {} x {threads} threads",
                scheduler.name()
            );
        }
    }
    // The shared cache actually served warm state across runs (13 runs, 3
    // keys): the equivalence above covered cold *and* hit paths.
    let stats = cache.stats();
    assert_eq!(stats.misses, 3, "three distinct warm keys boot once each");
    assert!(stats.hits > stats.misses, "later runs rode the warm cache");
}

/// Fingerprint of an ExplFrame attack report — the value the attack job
/// emits per trial. Any report field difference changes it.
fn report_fingerprint(report: &explframe::attack::AttackReport) -> u64 {
    fnv1a(format!("{report:?}").as_bytes())
}

/// The mixed service job matrix: pure arithmetic, machine probes sharing a
/// warm key, and a real end-to-end attack forked off the same warm
/// snapshot as the probes.
fn service_matrix() -> Vec<Arc<dyn JobSpec>> {
    let arith = Arc::new(fn_job("arith", &["rot", "mul"], 6, 3, |_, cell, seed| {
        Json::UInt(if cell == 0 {
            seed.rotate_left(9)
        } else {
            seed.wrapping_mul(0x9E37_79B9)
        })
    })) as Arc<dyn JobSpec>;
    let probe =
        Arc::new(ProbeJob::new("probe", MachineConfig::small(5), 64, 6, 11)) as Arc<dyn JobSpec>;
    let attack = Arc::new(
        fn_job("attack-aes", &["aes"], 1, 77, |snap, _cell, seed| {
            let mut cfg = ExplFrameConfig::small_demo(5).with_template_pages(256);
            cfg.seed = seed;
            let report = ExplFrame::new(cfg)
                .run_snapshot(snap.expect("attack job declares a warm spec"))
                .expect("attack runs at machine level");
            Json::UInt(report_fingerprint(&report))
        })
        .with_warm(WarmSpec {
            // Same config and depth as the probe job: the attack and the
            // probes share one boot through the server's warm cache.
            config: MachineConfig::small(5),
            warm_pages: 64,
        }),
    ) as Arc<dyn JobSpec>;
    vec![arith, probe, attack]
}

#[test]
fn service_streams_identical_bytes_under_every_scheduler_and_worker_count() {
    let baseline =
        explframe::campaignd::assert_scheduler_equivalence(&service_matrix, &THREAD_GRID, &[11]);
    assert_eq!(baseline.len(), 3);
    // Sanity: the attack actually ran and reduced into the summary (a
    // passing equivalence over trivially-empty artifacts would be vacuous).
    let attack = &baseline[2];
    assert_eq!(attack.name, "attack-aes");
    let summary = Json::parse(&attack.summary).expect("summary is valid JSON");
    let fingerprint = summary.get("fingerprint").and_then(Json::as_u64);
    assert!(fingerprint.is_some_and(|f| f != 0));
    // And it matches a from-scratch in-process run of the same spec: the
    // service layer adds scheduling, never semantics.
    let snap = warm_boot(MachineConfig::small(5), CpuId(0), 64).snapshot();
    let mut cfg = ExplFrameConfig::small_demo(5).with_template_pages(256);
    cfg.seed = explframe::campaign::trial_seed(77, 0);
    let report = ExplFrame::new(cfg)
        .run_snapshot(&snap)
        .expect("attack runs");
    let expected = report_fingerprint(&report);
    let cell_trial = summary
        .get("cells")
        .and_then(|cells| match cells {
            Json::Arr(cells) => cells.first(),
            _ => None,
        })
        .and_then(|cell| cell.get("trials"))
        .and_then(|trials| match trials {
            Json::Arr(trials) => trials.first(),
            _ => None,
        })
        .and_then(Json::as_u64);
    assert_eq!(cell_trial, Some(expected));
}
