//! # ExplFrame — reproduction of the DATE 2020 paper
//!
//! *"ExplFrame: Exploiting Page Frame Cache for Fault Analysis of Block
//! Ciphers"* (Chakraborty, Bhattacharya, Saha, Mukhopadhyay).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dram`] — DRAM device model with Rowhammer disturbance physics.
//! * [`cachesim`] — CPU cache model coupling misses to row activations.
//! * [`memsim`] — Linux zoned / buddy / per-CPU page-frame-cache allocator.
//! * [`machine`] — the composed multi-CPU machine with processes and paging.
//! * [`ciphers`] — AES and PRESENT with externalized lookup tables.
//! * [`fault`] — Persistent Fault Analysis and DFA key recovery.
//! * [`attack`] (crate `explframe-core`) — the phase-pipeline attack API:
//!   first-class phases (`Template`/`Release`/`Steer`/`Hammer`/`Collect`/
//!   `Analyze`) over typed artifacts, composed by `Pipeline`, with
//!   structured `PhaseEvent` traces; `ExplFrame` is the paper's standard
//!   composition.
//! * [`campaign`] — the deterministic parallel campaign engine driving the
//!   `exp_*` experiment binaries (scenario matrices, SplitMix64 per-trial
//!   seeding, thread-count-independent reduction, `results/summary.json`).
//! * [`campaignd`] — campaign-as-a-service: a resident `CampaignServer`
//!   multiplexing concurrent jobs over a work-stealing pool with a
//!   fingerprint-keyed warm snapshot cache, plus the file-queue daemon.
//!
//! See the repository `README.md` for a tour and `examples/quickstart.rs`
//! for an end-to-end run.

#![forbid(unsafe_code)]

pub use cachesim;
pub use campaign;
pub use campaignd;
pub use ciphers;
pub use dram;
pub use explframe_core as attack;
pub use fault;
pub use machine;
pub use memsim;
